"""Detection utilities: CA-CFAR thresholds and 2-D range-angle peak picking.

The paper's processing pipeline (Sec. 9.1) extracts human reflections as
peaks in background-subtracted range-angle power profiles, with "smoothing
over time and peak rejection" on top. The primitives for that live here.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import SignalProcessingError

__all__ = ["cfar_threshold", "detect_peaks_2d", "PeakDetection"]


@dataclasses.dataclass(frozen=True)
class PeakDetection:
    """One detected peak in a range-angle power map."""

    range_index: int
    angle_index: int
    power: float


def cfar_threshold(power: np.ndarray, *, guard_cells: int = 2,
                   training_cells: int = 8, scale: float = 4.0) -> np.ndarray:
    """Cell-averaging CFAR threshold along the last axis of ``power``.

    For each cell, the noise level is estimated as the mean of
    ``training_cells`` cells on each side, skipping ``guard_cells`` adjacent
    cells (which may contain the target itself); the threshold is that level
    times ``scale``. Edges fall back to the available one-sided training data.
    """
    spectrum = np.asarray(power, dtype=float)
    if guard_cells < 0 or training_cells < 1:
        raise SignalProcessingError("guard_cells >= 0 and training_cells >= 1 required")
    n = spectrum.shape[-1]
    window = guard_cells + training_cells
    if n < 2 * window + 1:
        raise SignalProcessingError(
            f"spectrum of length {n} too short for CFAR window {window}"
        )

    # Sliding sums via a cumulative sum, vectorized over leading axes.
    padded = np.concatenate(
        [np.zeros(spectrum.shape[:-1] + (1,), dtype=float),
         np.cumsum(spectrum, axis=-1)], axis=-1
    )

    def window_sum(start: np.ndarray, stop: np.ndarray) -> np.ndarray:
        start = np.clip(start, 0, n)
        stop = np.clip(stop, 0, n)
        return np.take(padded, stop, axis=-1) - np.take(padded, start, axis=-1)

    idx = np.arange(n)
    left = window_sum(idx - window, idx - guard_cells)
    right = window_sum(idx + guard_cells + 1, idx + window + 1)
    counts = (np.clip(idx - guard_cells, 0, n) - np.clip(idx - window, 0, n)
              + np.clip(idx + window + 1, 0, n) - np.clip(idx + guard_cells + 1, 0, n))
    counts = np.maximum(counts, 1)
    noise = (left + right) / counts
    return noise * scale


def detect_peaks_2d(power_map: np.ndarray, *, threshold: float,
                    max_peaks: int | None = None,
                    min_range_separation: int = 1,
                    min_angle_separation: int = 1,
                    sidelobe_rejection_db: float | None = 12.0,
                    sidelobe_range_bins: int = 3,
                    range_sidelobe_rejection_db: float = 20.0,
                    range_sidelobe_angle_bins: int = 5) -> list[PeakDetection]:
    """Find local maxima above ``threshold`` in a (range x angle) power map.

    A cell is a candidate when it is >= all of its 8 neighbours and strictly
    above ``threshold``. Candidates are accepted strongest-first, suppressing
    any later candidate within the given index separations of an accepted one
    — the "peak rejection" step of the paper's pipeline.

    Two sidelobe-rejection rules (enabled by ``sidelobe_rejection_db``)
    remove the processing artifacts of a strong target:

    - *beamforming sidelobes* sit on the same range ring at offset angles: a
      candidate within ``sidelobe_range_bins`` rows of an accepted peak is
      rejected when at least ``sidelobe_rejection_db`` weaker;
    - *range-FFT (window) sidelobes* sit at the same angle at offset ranges:
      a candidate within ``range_sidelobe_angle_bins`` columns is rejected
      when at least ``range_sidelobe_rejection_db`` weaker.

    A real second target of comparable strength survives both rules.
    """
    grid = np.asarray(power_map, dtype=float)
    if grid.ndim != 2:
        raise SignalProcessingError(
            f"detect_peaks_2d expects a 2-D map, got shape {grid.shape}"
        )
    if grid.shape[0] < 3 or grid.shape[1] < 3:
        return []

    center = grid[1:-1, 1:-1]
    is_max = np.ones_like(center, dtype=bool)
    for dr in (-1, 0, 1):
        for dc in (-1, 0, 1):
            if dr == 0 and dc == 0:
                continue
            neighbour = grid[1 + dr: grid.shape[0] - 1 + dr,
                             1 + dc: grid.shape[1] - 1 + dc]
            is_max &= center >= neighbour
    rows, cols = np.nonzero(is_max & (center > threshold))
    rows = rows + 1
    cols = cols + 1

    sidelobe_ratio = None
    range_sidelobe_ratio = None
    if sidelobe_rejection_db is not None:
        if sidelobe_rejection_db <= 0 or range_sidelobe_rejection_db <= 0:
            raise SignalProcessingError("sidelobe rejection dB must be positive")
        sidelobe_ratio = 10.0 ** (-sidelobe_rejection_db / 10.0)
        range_sidelobe_ratio = 10.0 ** (-range_sidelobe_rejection_db / 10.0)

    # Strongest-first greedy acceptance, vectorized: instead of re-testing
    # every candidate against every accepted peak (O(P^2)), each accepted
    # peak stamps (a) its separation rectangle into a blocked-cell mask and
    # (b) its sidelobe power floor into per-row / per-column threshold
    # arrays. A candidate within ``sidelobe_range_bins`` rows of *some*
    # accepted peak is weaker than ``p.power * ratio`` for some such peak
    # iff it is below the running row-wise maximum of those floors, so the
    # thresholds reproduce the pairwise ``any(...)`` exactly.
    order = np.argsort(grid[rows, cols])[::-1]
    blocked = np.zeros(grid.shape, dtype=bool)
    row_floor = np.zeros(grid.shape[0], dtype=float)
    col_floor = np.zeros(grid.shape[1], dtype=float)
    accepted: list[PeakDetection] = []
    for k in order:
        r, c = int(rows[k]), int(cols[k])
        power = float(grid[r, c])
        clash = bool(blocked[r, c])
        if not clash and sidelobe_ratio is not None:
            clash = power < row_floor[r] or power < col_floor[c]
        if clash:
            continue
        accepted.append(PeakDetection(r, c, power))
        if max_peaks is not None and len(accepted) >= max_peaks:
            break
        blocked[max(r - min_range_separation + 1, 0): r + min_range_separation,
                max(c - min_angle_separation + 1, 0): c + min_angle_separation,
                ] = True
        if sidelobe_ratio is not None:
            assert range_sidelobe_ratio is not None
            row_lo = max(r - sidelobe_range_bins, 0)
            row_slice = slice(row_lo, r + sidelobe_range_bins + 1)
            np.maximum(row_floor[row_slice], power * sidelobe_ratio,
                       out=row_floor[row_slice])
            col_lo = max(c - range_sidelobe_angle_bins, 0)
            col_slice = slice(col_lo, c + range_sidelobe_angle_bins + 1)
            np.maximum(col_floor[col_slice], power * range_sidelobe_ratio,
                       out=col_floor[col_slice])
    return accepted
