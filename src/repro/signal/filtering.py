"""Time-domain smoothing and outlier rejection for tracked positions.

Raw per-frame detections are "sporadic with intermittent noise" (Sec. 9.1),
so the paper smooths over time and rejects spurious peaks before reporting a
trajectory. These filters implement that stage.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SignalProcessingError

__all__ = ["moving_average", "median_filter", "reject_outliers", "smooth_trajectory"]


def _check_1d_or_2d(values: np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if arr.ndim not in (1, 2) or arr.shape[0] == 0:
        raise SignalProcessingError(
            f"{name} expects a non-empty 1-D or (T, D) array, got shape {arr.shape}"
        )
    return arr


def moving_average(values: np.ndarray, window: int) -> np.ndarray:
    """Centered moving average with edge shrinking, along axis 0.

    The window shrinks near the boundaries instead of zero-padding, so the
    output has no startup bias and the same shape as the input.
    """
    arr = _check_1d_or_2d(values, "moving_average")
    if window < 1:
        raise SignalProcessingError(f"window must be >= 1, got {window}")
    if window == 1:
        return arr.copy()
    half = window // 2
    n = arr.shape[0]
    flat = arr.reshape(n, -1)
    cumsum = np.vstack([np.zeros((1, flat.shape[1]), dtype=float),
                        np.cumsum(flat, axis=0)])
    idx = np.arange(n)
    lo = np.clip(idx - half, 0, n)
    hi = np.clip(idx + half + 1, 0, n)
    sums = cumsum[hi] - cumsum[lo]
    counts = (hi - lo).reshape(-1, 1)
    return (sums / counts).reshape(arr.shape)


def median_filter(values: np.ndarray, window: int) -> np.ndarray:
    """Centered median filter with edge shrinking, along axis 0."""
    arr = _check_1d_or_2d(values, "median_filter")
    if window < 1:
        raise SignalProcessingError(f"window must be >= 1, got {window}")
    if window == 1:
        return arr.copy()
    half = window // 2
    n = arr.shape[0]
    out = np.empty_like(arr)
    for i in range(n):
        lo = max(0, i - half)
        hi = min(n, i + half + 1)
        out[i] = np.median(arr[lo:hi], axis=0)
    return out


def reject_outliers(positions: np.ndarray, *, max_jump: float) -> np.ndarray:
    """Replace positions that jump implausibly far from their predecessor.

    Any point farther than ``max_jump`` from the previous *accepted* point is
    treated as a spurious detection and replaced by that previous point; the
    caller typically smooths afterwards. This mirrors the paper's peak
    rejection: a human cannot teleport between consecutive frames.
    """
    arr = _check_1d_or_2d(positions, "reject_outliers")
    if arr.ndim != 2:
        raise SignalProcessingError("reject_outliers expects (T, D) positions")
    if max_jump <= 0:
        raise SignalProcessingError(f"max_jump must be positive, got {max_jump}")
    out = arr.copy()
    for i in range(1, out.shape[0]):
        if np.linalg.norm(out[i] - out[i - 1]) > max_jump:
            out[i] = out[i - 1]
    return out


def smooth_trajectory(positions: np.ndarray, *, window: int = 5,
                      max_jump: float | None = None) -> np.ndarray:
    """Full smoothing stage: optional outlier rejection, median, then mean.

    The median pass removes residual single-frame spikes; the moving average
    then yields the smooth track the paper overlays on ground truth (Fig. 9).
    """
    arr = _check_1d_or_2d(positions, "smooth_trajectory")
    if max_jump is not None:
        arr = reject_outliers(arr, max_jump=max_jump)
    arr = median_filter(arr, min(window, arr.shape[0]) | 1)
    return moving_average(arr, window)
