"""Phase extraction for breathing analysis (Sec. 11.4).

A static person's chest motion is millimetric — invisible in range bins but
plainly visible in the *phase* of the beat tone at their range bin, which
rotates by ``4 pi / lambda`` radians per meter of chest displacement. The
eavesdropper (and the legitimate sensor) recover breathing by tracking that
phase across frames; RF-Protect fakes it with a programmable phase shifter.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SignalProcessingError

__all__ = ["extract_phase", "unwrap_phase", "dominant_period"]


def extract_phase(range_profiles: np.ndarray, bin_index: int) -> np.ndarray:
    """Phase time-series of one range bin across frames.

    Args:
        range_profiles: complex array of shape ``(num_frames, num_bins)``.
        bin_index: the range bin occupied by the (static) subject.

    Returns:
        Wrapped phase per frame, in radians, shape ``(num_frames,)``.
    """
    profiles = np.asarray(range_profiles)
    if profiles.ndim != 2:
        raise SignalProcessingError(
            f"extract_phase expects (frames, bins), got shape {profiles.shape}"
        )
    if not 0 <= bin_index < profiles.shape[1]:
        raise SignalProcessingError(
            f"bin_index {bin_index} outside profile with {profiles.shape[1]} bins"
        )
    return np.angle(profiles[:, bin_index])


def unwrap_phase(phase: np.ndarray) -> np.ndarray:
    """Unwrap a phase series so breathing excursions accumulate smoothly."""
    series = np.asarray(phase, dtype=float)
    if series.ndim != 1 or series.size == 0:
        raise SignalProcessingError("unwrap_phase expects a non-empty 1-D series")
    return np.unwrap(series)


def dominant_period(series: np.ndarray, dt: float, *,
                    min_period: float = 1.0, max_period: float = 15.0) -> float:
    """Dominant oscillation period of a series, in seconds.

    Used to read a breathing period out of an unwrapped phase trace. The
    series is detrended (mean and linear trend removed) and the strongest
    spectral line within [1/max_period, 1/min_period] Hz is reported.

    Raises :class:`SignalProcessingError` when the series is too short to
    contain even one cycle of ``max_period``.
    """
    values = np.asarray(series, dtype=float)
    if values.ndim != 1:
        raise SignalProcessingError("dominant_period expects a 1-D series")
    if dt <= 0:
        raise SignalProcessingError(f"dt must be positive, got {dt}")
    if min_period <= 0 or max_period <= min_period:
        raise SignalProcessingError("need 0 < min_period < max_period")
    duration = (values.size - 1) * dt
    if duration < max_period:
        raise SignalProcessingError(
            f"series spans {duration:.2f}s, too short to resolve "
            f"periods up to {max_period:.2f}s"
        )

    t = np.arange(values.size) * dt
    trend = np.polyfit(t, values, deg=1)
    detrended = values - np.polyval(trend, t)

    n_fft = 8 * values.size  # zero-pad for fine frequency interpolation
    spectrum = np.abs(np.fft.rfft(detrended, n=n_fft))
    freqs = np.fft.rfftfreq(n_fft, d=dt)
    band = (freqs >= 1.0 / max_period) & (freqs <= 1.0 / min_period)
    if not np.any(band):
        raise SignalProcessingError("no spectral bins inside the period band")
    band_freqs = freqs[band]
    best = band_freqs[np.argmax(spectrum[band])]
    if best <= 0:
        raise SignalProcessingError("no oscillation found in the period band")
    return float(1.0 / best)
