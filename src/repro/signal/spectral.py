"""Range-FFT and spectral peak utilities for dechirped FMCW signals.

The dechirped (beat) signal of one chirp is a sum of complex tones, one per
propagation path, at frequencies proportional to path distance (Eq. 1). The
range FFT separates those tones at a resolution of ``C / 2B`` (Sec. 3).
"""

from __future__ import annotations

import functools

import numpy as np

from repro.errors import SignalProcessingError
from repro.signal.chirp import ChirpConfig
from repro.signal.windows import get_window

__all__ = ["range_fft", "range_axis", "beat_spectrum", "find_spectral_peaks"]


def range_fft(beat_samples: np.ndarray, chirp: ChirpConfig, *,
              window: str = "hann", zero_pad_factor: int = 2) -> np.ndarray:
    """Compute the complex range profile of one (or many) beat signals.

    Args:
        beat_samples: complex array whose *last* axis is the per-chirp sample
            axis — e.g. ``(num_samples,)`` for one chirp or
            ``(num_antennas, num_samples)`` for one frame.
        chirp: the chirp configuration the samples were captured under.
        window: taper applied before the FFT (see ``signal.windows``).
        zero_pad_factor: FFT length multiplier for finer bin interpolation.

    Returns:
        Complex spectrum over the positive-frequency half, with the same
        leading axes as the input. Bin ``k`` corresponds to the distance
        ``range_axis(chirp, ...)[k]``.
    """
    samples = np.asarray(beat_samples)
    if samples.shape[-1] != chirp.num_samples:
        raise SignalProcessingError(
            f"beat signal has {samples.shape[-1]} samples per chirp, "
            f"expected {chirp.num_samples}"
        )
    if zero_pad_factor < 1:
        raise SignalProcessingError("zero_pad_factor must be >= 1")
    taper = get_window(window, chirp.num_samples)
    n_fft = chirp.num_samples * zero_pad_factor
    spectrum = np.fft.fft(samples * taper, n=n_fft, axis=-1)
    # Positive beat frequencies only: reflections always add delay, so valid
    # ranges live in [0, fs/2); the negative half would alias to "behind the
    # radar" and is dropped, mirroring Sec. 5.1's note on negative harmonics.
    return spectrum[..., : n_fft // 2]


@functools.lru_cache(maxsize=None)
def _cached_range_axis(chirp: ChirpConfig, zero_pad_factor: int) -> np.ndarray:
    n_fft = chirp.num_samples * zero_pad_factor
    beat_frequencies = np.arange(n_fft // 2) * chirp.sample_rate / n_fft
    axis = np.asarray(chirp.beat_frequency_to_distance(beat_frequencies))
    axis.flags.writeable = False
    return axis


def range_axis(chirp: ChirpConfig, *, zero_pad_factor: int = 2) -> np.ndarray:
    """Distances (meters) corresponding to each ``range_fft`` output bin.

    The axis for a given ``(chirp, zero_pad_factor)`` is computed once per
    process and returned as a shared read-only array (``ChirpConfig`` is a
    frozen, hashable dataclass, so it keys the memo directly); the receive
    pipeline asks for it on every frame. Callers needing to modify the axis
    must ``.copy()`` it.
    """
    if zero_pad_factor < 1:
        raise SignalProcessingError("zero_pad_factor must be >= 1")
    return _cached_range_axis(chirp, zero_pad_factor)


def beat_spectrum(beat_samples: np.ndarray, chirp: ChirpConfig, *,
                  window: str = "hann", zero_pad_factor: int = 2) -> np.ndarray:
    """Power spectrum (|range FFT|^2) of the beat signal."""
    profile = range_fft(beat_samples, chirp, window=window,
                        zero_pad_factor=zero_pad_factor)
    return np.abs(profile) ** 2


def find_spectral_peaks(power: np.ndarray, *, min_height: float = 0.0,
                        min_separation: int = 1,
                        max_peaks: int | None = None) -> list[int]:
    """Indices of local maxima in a 1-D power spectrum, strongest first.

    A bin is a peak when it strictly exceeds both neighbours and reaches
    ``min_height``. Peaks closer than ``min_separation`` bins to an already
    accepted (stronger) peak are suppressed.
    """
    spectrum = np.asarray(power, dtype=float)
    if spectrum.ndim != 1:
        raise SignalProcessingError(
            f"find_spectral_peaks expects 1-D input, got shape {spectrum.shape}"
        )
    if spectrum.size < 3:
        return []
    if min_separation < 1:
        raise SignalProcessingError("min_separation must be >= 1")

    interior = spectrum[1:-1]
    is_peak = (interior > spectrum[:-2]) & (interior >= spectrum[2:])
    candidates = np.nonzero(is_peak & (interior >= min_height))[0] + 1
    # Strongest-first greedy suppression of nearby peaks. Instead of testing
    # each candidate against every accepted peak (O(P^2)), accepted peaks
    # stamp their exclusion interval into a blocked-bin mask, making each
    # candidate an O(1) lookup.
    order = candidates[np.argsort(spectrum[candidates])[::-1]]
    blocked = np.zeros(spectrum.size, dtype=bool)
    accepted: list[int] = []
    for idx in order:
        if blocked[idx]:
            continue
        accepted.append(int(idx))
        if max_peaks is not None and len(accepted) >= max_peaks:
            break
        blocked[max(idx - min_separation + 1, 0): idx + min_separation] = True
    return accepted
