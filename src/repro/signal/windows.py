"""Window functions for spectral analysis.

Implemented directly (rather than via scipy) so the exact taper used by the
range FFT is visible and testable; these are the textbook cosine-sum forms.

:func:`get_window` memoizes each ``(name, length)`` plane once per process
and hands out the *same* read-only array on every call — the receive
pipeline applies a taper to every frame of every sweep, so the cosine-sum
evaluation must not be paid per frame. Callers that need a mutable copy
must ``.copy()`` explicitly.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.errors import SignalProcessingError

__all__ = ["get_window", "rectangular", "hann", "hamming", "blackman"]


def _check_length(length: int) -> None:
    if length < 1:
        raise SignalProcessingError(f"window length must be >= 1, got {length}")


def rectangular(length: int) -> np.ndarray:
    """All-ones window (no taper)."""
    _check_length(length)
    return np.ones(length, dtype=float)


def hann(length: int) -> np.ndarray:
    """Hann window: strong sidelobe suppression, ~2-bin mainlobe widening."""
    _check_length(length)
    if length == 1:
        return np.ones(1, dtype=float)
    n = np.arange(length)
    return 0.5 - 0.5 * np.cos(2.0 * np.pi * n / (length - 1))


def hamming(length: int) -> np.ndarray:
    """Hamming window: non-zero endpoints, lower first sidelobe than Hann."""
    _check_length(length)
    if length == 1:
        return np.ones(1, dtype=float)
    n = np.arange(length)
    return 0.54 - 0.46 * np.cos(2.0 * np.pi * n / (length - 1))


def blackman(length: int) -> np.ndarray:
    """Blackman window: widest mainlobe, deepest sidelobes of the set."""
    _check_length(length)
    if length == 1:
        return np.ones(1, dtype=float)
    n = np.arange(length)
    x = 2.0 * np.pi * n / (length - 1)
    return 0.42 - 0.5 * np.cos(x) + 0.08 * np.cos(2.0 * x)


_WINDOWS = {
    "rectangular": rectangular,
    "boxcar": rectangular,
    "hann": hann,
    "hamming": hamming,
    "blackman": blackman,
}


@functools.lru_cache(maxsize=None)
def _cached_window(canonical_name: str, length: int) -> np.ndarray:
    window = _WINDOWS[canonical_name](length)
    window.flags.writeable = False
    return window


def get_window(name: str, length: int) -> np.ndarray:
    """Return the named window of the given length.

    The result is a process-wide cached array with ``writeable=False`` —
    every caller shares the same plane, so in-place mutation raises; take a
    ``.copy()`` to modify. Raises :class:`SignalProcessingError` for unknown
    names so typos fail loudly instead of silently falling back to a
    rectangular window.
    """
    canonical = name.lower()
    if canonical not in _WINDOWS:
        known = ", ".join(sorted(_WINDOWS))
        raise SignalProcessingError(
            f"unknown window {name!r}; known windows: {known}"
        )
    return _cached_window(canonical, length)
