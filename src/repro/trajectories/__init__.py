"""Human trajectory data: synthesis, labelling, datasets, and IO.

The paper trains its cGAN on 7000 ten-second 50-point traces collected from
volunteers in an office (Sec. 6). That dataset is not public; this package
replaces it with a human-motion simulator producing traces with the same
format and the same 5-class range-of-motion labelling.
"""

from repro.trajectories.dataset import TrajectoryDataset
from repro.trajectories.floorplan import (
    FloorPlan,
    FloorPlanConstraint,
    Wall,
    count_wall_crossings,
)
from repro.trajectories.io import load_dataset, save_dataset
from repro.trajectories.labels import (
    DEFAULT_RANGE_EDGES,
    range_class,
    range_class_of_trajectory,
)
from repro.trajectories.synthesis import HumanMotionSimulator, MotionProfile

__all__ = [
    "DEFAULT_RANGE_EDGES",
    "FloorPlan",
    "FloorPlanConstraint",
    "HumanMotionSimulator",
    "MotionProfile",
    "TrajectoryDataset",
    "Wall",
    "count_wall_crossings",
    "load_dataset",
    "range_class",
    "range_class_of_trajectory",
    "save_dataset",
]
