"""Human trajectory data: synthesis, labelling, datasets, and IO.

The paper trains its cGAN on 7000 ten-second 50-point traces collected from
volunteers in an office (Sec. 6). That dataset is not public; this package
replaces it with a human-motion simulator producing traces with the same
format and the same 5-class range-of-motion labelling.
"""

from repro.trajectories.dataset import TrajectoryDataset
from repro.trajectories.floorplan import (
    FloorPlan,
    FloorPlanConstraint,
    Wall,
    count_wall_crossings,
)
from repro.trajectories.io import load_dataset, save_dataset
from repro.trajectories.labels import (
    DEFAULT_RANGE_EDGES,
    range_class,
    range_class_of_trajectory,
)
from repro.trajectories.synthesis import (
    ACTIVITIES,
    Activity,
    ActivityProgram,
    HumanMotionSimulator,
    MotionProfile,
    ProgramStep,
    activity_names,
    get_activity,
    program_speed_limit,
    rectangle_path,
    register_activity,
    s_curve_path,
    synthesize_program,
)

__all__ = [
    "ACTIVITIES",
    "Activity",
    "ActivityProgram",
    "DEFAULT_RANGE_EDGES",
    "FloorPlan",
    "FloorPlanConstraint",
    "HumanMotionSimulator",
    "MotionProfile",
    "ProgramStep",
    "TrajectoryDataset",
    "Wall",
    "activity_names",
    "count_wall_crossings",
    "get_activity",
    "load_dataset",
    "program_speed_limit",
    "range_class",
    "range_class_of_trajectory",
    "rectangle_path",
    "register_activity",
    "s_curve_path",
    "save_dataset",
    "synthesize_program",
]
