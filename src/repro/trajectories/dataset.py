"""Trajectory dataset container: batching, splitting, normalization.

The GAN consumes trajectories in *step representation*: the ``(T-1, 2)``
sequence of displacements between consecutive points, normalized by a
dataset-wide scale. Steps are the natural domain for generating motion —
smoothness and speed statistics are local properties of steps, and
integrating generated steps guarantees a continuous trajectory.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.errors import DatasetError
from repro.trajectories.labels import range_class_of_trajectory
from repro.types import Trajectory

__all__ = ["TrajectoryDataset"]


class TrajectoryDataset:
    """An immutable list of equally-long, equally-sampled trajectories."""

    def __init__(self, trajectories: Sequence[Trajectory]) -> None:
        if not trajectories:
            raise DatasetError("dataset must contain at least one trajectory")
        first = trajectories[0]
        for trajectory in trajectories:
            if len(trajectory) != len(first):
                raise DatasetError(
                    f"all trajectories must have {len(first)} points, "
                    f"found one with {len(trajectory)}"
                )
            if abs(trajectory.dt - first.dt) > 1e-9:
                raise DatasetError("all trajectories must share the same dt")
        self.trajectories = list(trajectories)
        self.num_points = len(first)
        self.dt = first.dt

    def __len__(self) -> int:
        return len(self.trajectories)

    def __getitem__(self, index: int) -> Trajectory:
        return self.trajectories[index]

    def __iter__(self) -> Iterator[Trajectory]:
        return iter(self.trajectories)

    def labels(self) -> np.ndarray:
        """Range-class labels, computing any that are missing."""
        return np.array([
            t.label if t.label is not None else range_class_of_trajectory(t)
            for t in self.trajectories
        ], dtype=np.int64)

    def class_counts(self, num_classes: int = 5) -> np.ndarray:
        """Trajectories per range class."""
        return np.bincount(self.labels(), minlength=num_classes)

    def positions_array(self) -> np.ndarray:
        """All trajectories as ``(N, T, 2)`` positions."""
        return np.stack([t.points for t in self.trajectories])

    def steps_array(self) -> np.ndarray:
        """All trajectories as ``(N, T-1, 2)`` displacement steps."""
        positions = self.positions_array()
        return np.diff(positions, axis=1)

    def step_scale(self) -> float:
        """Dataset-wide RMS step length — the GAN's normalization scale."""
        steps = self.steps_array()
        scale = float(np.sqrt(np.mean(steps ** 2)))
        if scale <= 0:
            raise DatasetError("degenerate dataset: all trajectories are static")
        return scale

    def normalized_steps(self, scale: float | None = None) -> np.ndarray:
        """Steps divided by ``scale`` (dataset RMS step by default)."""
        if scale is None:
            scale = self.step_scale()
        if scale <= 0:
            raise DatasetError("scale must be positive")
        return self.steps_array() / scale

    def split(self, fraction: float,
              rng: np.random.Generator) -> tuple["TrajectoryDataset", "TrajectoryDataset"]:
        """Random split into two datasets of ``fraction`` / ``1 - fraction``.

        Both halves must be non-empty; used e.g. for the real-vs-real FID
        reference (Fig. 12 normalization).
        """
        if not 0.0 < fraction < 1.0:
            raise DatasetError(f"fraction must be in (0, 1), got {fraction}")
        order = rng.permutation(len(self))
        cut = int(round(fraction * len(self)))
        if cut == 0 or cut == len(self):
            raise DatasetError("split produced an empty half; dataset too small")
        first = [self.trajectories[i] for i in order[:cut]]
        second = [self.trajectories[i] for i in order[cut:]]
        return TrajectoryDataset(first), TrajectoryDataset(second)

    def batches(self, batch_size: int, rng: np.random.Generator, *,
                scale: float | None = None) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Shuffled mini-batches of ``(normalized_steps, labels)``.

        Yields ``(B, T-1, 2)`` float arrays with ``(B,)`` int labels; the
        final short batch is dropped (GAN training prefers constant batch
        statistics).
        """
        if batch_size < 1:
            raise DatasetError("batch_size must be >= 1")
        steps = self.normalized_steps(scale)
        labels = self.labels()
        order = rng.permutation(len(self))
        for start in range(0, len(self) - batch_size + 1, batch_size):
            index = order[start: start + batch_size]
            yield steps[index], labels[index]

    def subset(self, indices: Sequence[int]) -> "TrajectoryDataset":
        """Dataset restricted to the given indices."""
        chosen = [self.trajectories[i] for i in indices]
        return TrajectoryDataset(chosen)

    def filter_by_class(self, label: int) -> "TrajectoryDataset":
        """All trajectories of one range class; raises if none exist."""
        labels = self.labels()
        indices = np.nonzero(labels == label)[0]
        if indices.size == 0:
            raise DatasetError(f"no trajectories with class {label}")
        return self.subset(indices.tolist())
