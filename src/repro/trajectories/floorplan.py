"""Floor-plan awareness for ghost trajectories (Sec. 8, future work).

The paper notes a limitation: cGAN ghosts "may unintentionally walk through
walls" if the eavesdropper knows the building's floor plan, and proposes
constraining generation with floor-plan knowledge. This module implements
that extension:

- :class:`FloorPlan`: a room footprint plus interior wall segments, with
  segment-intersection tests;
- :func:`count_wall_crossings`: the detectability metric (how many steps of
  a trajectory pass through a wall);
- :class:`FloorPlanConstraint`: repairs or rejects trajectories so ghosts
  respect walls, usable as a filter behind any trajectory source (GAN,
  simulator, baselines).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.errors import DatasetError
from repro.geometry import Rectangle
from repro.types import Trajectory

__all__ = ["FloorPlan", "FloorPlanConstraint", "Wall", "count_wall_crossings"]


@dataclasses.dataclass(frozen=True)
class Wall:
    """An interior wall segment from ``start`` to ``end`` (meters)."""

    start: tuple[float, float]
    end: tuple[float, float]

    def __post_init__(self) -> None:
        if np.allclose(self.start, self.end):
            raise DatasetError(f"degenerate wall at {self.start}")

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return (np.asarray(self.start, dtype=float),
                np.asarray(self.end, dtype=float))


def _segments_intersect(p1: np.ndarray, p2: np.ndarray,
                        q1: np.ndarray, q2: np.ndarray) -> bool:
    """Proper segment intersection via orientation tests (collinear-safe)."""

    def orientation(a, b, c) -> float:
        return (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])

    def on_segment(a, b, c) -> bool:
        return (min(a[0], b[0]) - 1e-12 <= c[0] <= max(a[0], b[0]) + 1e-12
                and min(a[1], b[1]) - 1e-12 <= c[1] <= max(a[1], b[1]) + 1e-12)

    o1 = orientation(p1, p2, q1)
    o2 = orientation(p1, p2, q2)
    o3 = orientation(q1, q2, p1)
    o4 = orientation(q1, q2, p2)

    if ((o1 > 0) != (o2 > 0) and (o3 > 0) != (o4 > 0)
            and o1 != 0 and o2 != 0 and o3 != 0 and o4 != 0):
        return True
    # Collinear touching cases.
    if o1 == 0 and on_segment(p1, p2, q1):
        return True
    if o2 == 0 and on_segment(p1, p2, q2):
        return True
    if o3 == 0 and on_segment(q1, q2, p1):
        return True
    if o4 == 0 and on_segment(q1, q2, p2):
        return True
    return False


class FloorPlan:
    """A room footprint with interior walls."""

    def __init__(self, footprint: Rectangle,
                 walls: Sequence[Wall] = ()) -> None:
        self.footprint = footprint
        self.walls = list(walls)
        for wall in self.walls:
            start, end = wall.as_arrays()
            if not (footprint.contains(start) and footprint.contains(end)):
                raise DatasetError(
                    f"wall {wall.start}->{wall.end} extends outside the room"
                )

    def add_wall(self, start: tuple[float, float],
                 end: tuple[float, float]) -> Wall:
        """Add an interior wall; returns it."""
        wall = Wall(start, end)
        wall_start, wall_end = wall.as_arrays()
        if not (self.footprint.contains(wall_start)
                and self.footprint.contains(wall_end)):
            raise DatasetError("wall extends outside the room")
        self.walls.append(wall)
        return wall

    def step_crosses_wall(self, a: np.ndarray, b: np.ndarray) -> bool:
        """Whether the segment a->b passes through any wall."""
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        return any(
            _segments_intersect(a, b, *wall.as_arrays())
            for wall in self.walls
        )

    def crossing_steps(self, trajectory: Trajectory) -> np.ndarray:
        """Indices of trajectory steps that cross a wall."""
        points = trajectory.points
        crossings = [
            i for i in range(points.shape[0] - 1)
            if self.step_crosses_wall(points[i], points[i + 1])
        ]
        return np.asarray(crossings, dtype=int)

    def is_admissible(self, trajectory: Trajectory, *,
                      margin: float = 0.0) -> bool:
        """Trajectory stays inside the footprint and crosses no wall."""
        if not self.footprint.contains_all(trajectory.points, margin=margin):
            return False
        return self.crossing_steps(trajectory).size == 0


def count_wall_crossings(trajectory: Trajectory, plan: FloorPlan) -> int:
    """Number of steps that walk through a wall — Sec. 8's giveaway metric."""
    return int(plan.crossing_steps(trajectory).size)


class FloorPlanConstraint:
    """Makes trajectories respect a floor plan.

    Two mechanisms, applied in order:

    - *repair*: project wall-crossing steps to stop short of the wall
      (sliding the offending points back toward the previous point), then
      re-check — fixes glancing crossings without changing the shape much;
    - *reject*: if repair cannot fix the trajectory within the iteration
      budget, report it as inadmissible so the caller redraws.

    This is the post-hoc variant of the paper's proposed cGAN loss-term
    approach: source-agnostic, so it also guards simulator and baseline
    trajectories.
    """

    def __init__(self, plan: FloorPlan, *, margin: float = 0.05,
                 max_repair_iterations: int = 8) -> None:
        if margin < 0:
            raise DatasetError("margin must be >= 0")
        if max_repair_iterations < 1:
            raise DatasetError("max_repair_iterations must be >= 1")
        self.plan = plan
        self.margin = margin
        self.max_repair_iterations = max_repair_iterations

    def repair(self, trajectory: Trajectory) -> Trajectory | None:
        """Return an admissible version of ``trajectory``, or ``None``.

        Offending points are pulled back toward their predecessor until the
        step no longer crosses (fixes glancing contacts); a trajectory that
        genuinely continues deep past a wall instead gets the stop-at-wall
        treatment — the ghost halts at the obstacle, exactly what a real
        person would do. Returns ``None`` only when even that fails.
        """
        points = self.plan.footprint.clamp_all(trajectory.points, self.margin)
        for _ in range(self.max_repair_iterations):
            crossings = [
                i for i in range(points.shape[0] - 1)
                if self.plan.step_crosses_wall(points[i], points[i + 1])
            ]
            if not crossings:
                return trajectory.replace(points=points)
            for index in crossings:
                # Pull the far end of the crossing step halfway back.
                points[index + 1] = 0.5 * (points[index + 1] + points[index])

        # Fallback: stop at the wall. Freeze everything after the first
        # remaining crossing at the last admissible position.
        points = self.plan.footprint.clamp_all(trajectory.points, self.margin)
        for index in range(points.shape[0] - 1):
            if self.plan.step_crosses_wall(points[index], points[index + 1]):
                points[index + 1:] = points[index]
        candidate = trajectory.replace(points=points)
        if self.plan.is_admissible(candidate, margin=0.0):
            return candidate
        return None

    def filter(self, trajectories: Sequence[Trajectory]
               ) -> tuple[list[Trajectory], int]:
        """Repair every trajectory; drop the unrepairable.

        Returns ``(admissible_trajectories, num_rejected)``.
        """
        admissible: list[Trajectory] = []
        rejected = 0
        for trajectory in trajectories:
            if self.plan.is_admissible(trajectory, margin=self.margin):
                admissible.append(trajectory)
                continue
            repaired = self.repair(trajectory)
            if repaired is None:
                rejected += 1
            else:
                admissible.append(repaired)
        return admissible, rejected
