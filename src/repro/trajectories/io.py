"""Dataset persistence as ``.npz`` archives."""

from __future__ import annotations

import os

import numpy as np

from repro.errors import DatasetError
from repro.trajectories.dataset import TrajectoryDataset
from repro.types import Trajectory

__all__ = ["save_dataset", "load_dataset"]

_FORMAT_VERSION = 1


def save_dataset(dataset: TrajectoryDataset, path: str | os.PathLike) -> None:
    """Write a dataset to ``path`` as a compressed npz archive."""
    np.savez_compressed(
        path,
        version=np.array(_FORMAT_VERSION),
        positions=dataset.positions_array(),
        labels=dataset.labels(),
        dt=np.array(dataset.dt),
    )


def load_dataset(path: str | os.PathLike) -> TrajectoryDataset:
    """Load a dataset written by :func:`save_dataset`."""
    with np.load(path) as archive:
        missing = {"version", "positions", "labels", "dt"} - set(archive.files)
        if missing:
            raise DatasetError(f"archive is missing entries: {sorted(missing)}")
        version = int(archive["version"])
        if version != _FORMAT_VERSION:
            raise DatasetError(
                f"unsupported dataset format version {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        positions = archive["positions"]
        labels = archive["labels"]
        dt = float(archive["dt"])
    if positions.ndim != 3 or positions.shape[2] != 2:
        raise DatasetError(f"positions must be (N, T, 2), got {positions.shape}")
    if labels.shape != (positions.shape[0],):
        raise DatasetError("labels length does not match trajectory count")
    trajectories = [
        Trajectory(points, dt=dt, label=int(label))
        for points, label in zip(positions, labels)
    ]
    return TrajectoryDataset(trajectories)
