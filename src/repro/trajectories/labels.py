"""Range-of-motion labelling (Sec. 6).

The paper classifies its trajectory dataset "into five classes based on
ranges of motion" and conditions the cGAN on the class. The *range* of a
trajectory is the diameter of its bounding box; the class edges below span
from near-stationary shuffling (class 0) to purposeful room-crossing walks
(class 4).
"""

from __future__ import annotations

import numpy as np

from repro import constants
from repro.errors import DatasetError
from repro.types import Trajectory

__all__ = ["DEFAULT_RANGE_EDGES", "range_class", "range_class_of_trajectory"]

DEFAULT_RANGE_EDGES = (0.5, 1.5, 3.0, 5.0)
"""Class boundaries in meters: 5 classes need 4 edges."""


def range_class(motion_range: float,
                edges: tuple[float, ...] = DEFAULT_RANGE_EDGES) -> int:
    """Class index (0-based) of a motion range in meters."""
    if motion_range < 0:
        raise DatasetError(f"motion range must be >= 0, got {motion_range}")
    if len(edges) != constants.NUM_RANGE_CLASSES - 1:
        raise DatasetError(
            f"{constants.NUM_RANGE_CLASSES} classes need "
            f"{constants.NUM_RANGE_CLASSES - 1} edges, got {len(edges)}"
        )
    if any(b <= a for a, b in zip(edges, edges[1:])) or edges[0] <= 0:
        raise DatasetError(f"edges must be positive and increasing, got {edges}")
    return int(np.searchsorted(edges, motion_range, side="left"))


def range_class_of_trajectory(trajectory: Trajectory,
                              edges: tuple[float, ...] = DEFAULT_RANGE_EDGES) -> int:
    """Class index of a trajectory's bounding-box diameter."""
    return range_class(trajectory.motion_range(), edges)
