"""Human-motion synthesis: simulator, path primitives, activity library.

Produces 50-point, 10-second 2-D traces (the paper's trace format) using a
waypoint-seeking second-order walker: the subject picks goals inside a
walking area and steers toward them with bounded acceleration, smooth
heading changes, occasional pauses, and gait jitter. Five
:class:`MotionProfile` activity levels span near-stationary shuffling to
brisk walking, giving the dataset the range-of-motion diversity the paper's
5-class conditioning relies on.

On top of the walker sits an **activity library** (:data:`ACTIVITIES`):
named motion primitives — sitting, gesturing, falling, pause-and-turn
pacing, gait variants — composable into per-human
:class:`ActivityProgram` sequences. Programs are what scenario specs
(:mod:`repro.scenarios`) attach to each simulated human; they are
synthesized with one explicit ``rng``, stay inside the walking area, and
respect each activity's speed limit by construction.

The module also owns the shaped-path primitives (:func:`rectangle_path`,
:func:`s_curve_path`) that experiments walk ground-truth subjects along.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import constants
from repro.errors import DatasetError
from repro.geometry import Rectangle
from repro.trajectories.dataset import TrajectoryDataset
from repro.trajectories.labels import range_class_of_trajectory
from repro.types import Trajectory

__all__ = [
    "ACTIVITIES",
    "Activity",
    "ActivityProgram",
    "HumanMotionSimulator",
    "MotionProfile",
    "ProgramStep",
    "activity_names",
    "get_activity",
    "program_speed_limit",
    "rectangle_path",
    "register_activity",
    "s_curve_path",
    "synthesize_program",
]


@dataclasses.dataclass(frozen=True)
class MotionProfile:
    """Parameters of one activity level.

    Attributes:
        preferred_speed: cruising speed toward the goal, m/s.
        goal_radius: goals are sampled within this radius of the current
            position — small radii keep motion local (pottering), large
            radii produce room-crossing walks.
        pause_probability: per-step chance of standing still for a moment.
        jitter: std-dev of per-step acceleration noise (gait sway), m/s^2.
    """

    preferred_speed: float
    goal_radius: float
    pause_probability: float
    jitter: float

    def __post_init__(self) -> None:
        if self.preferred_speed < 0 or self.goal_radius <= 0:
            raise DatasetError("speed must be >= 0 and goal radius positive")
        if not 0 <= self.pause_probability < 1:
            raise DatasetError("pause probability must be in [0, 1)")
        if self.jitter < 0:
            raise DatasetError("jitter must be >= 0")


DEFAULT_PROFILES = (
    MotionProfile(preferred_speed=0.05, goal_radius=0.4,
                  pause_probability=0.35, jitter=0.05),
    MotionProfile(preferred_speed=0.25, goal_radius=1.0,
                  pause_probability=0.20, jitter=0.10),
    MotionProfile(preferred_speed=0.55, goal_radius=2.2,
                  pause_probability=0.10, jitter=0.15),
    MotionProfile(preferred_speed=0.95, goal_radius=4.0,
                  pause_probability=0.05, jitter=0.20),
    MotionProfile(preferred_speed=1.40, goal_radius=7.0,
                  pause_probability=0.02, jitter=0.25),
)
"""One profile per range class, slowest to fastest."""


class HumanMotionSimulator:
    """Generates human-like 2-D traces inside a walking area."""

    def __init__(self, area: Rectangle | None = None, *,
                 num_points: int = constants.TRACE_NUM_POINTS,
                 duration: float = constants.TRACE_DURATION_S,
                 profiles: tuple[MotionProfile, ...] = DEFAULT_PROFILES,
                 rng: np.random.Generator | None = None) -> None:
        if num_points < 2:
            raise DatasetError("traces need at least 2 points")
        if duration <= 0:
            raise DatasetError("duration must be positive")
        if not profiles:
            raise DatasetError("need at least one motion profile")
        if area is None:
            area = Rectangle.from_size(*constants.OFFICE_SIZE_M)
        self.area = area
        self.num_points = num_points
        self.duration = duration
        self.profiles = profiles
        self.rng = rng if rng is not None else np.random.default_rng(0)

    @property
    def dt(self) -> float:
        return self.duration / (self.num_points - 1)

    def sample_trajectory(self, profile_index: int | None = None) -> Trajectory:
        """Generate one trace; profile drawn at random when unspecified.

        The trajectory's ``label`` is its *measured* range class (from the
        realized motion), not the requested profile: a fast profile that
        happened to dawdle is labelled by what it actually did, exactly as
        the paper labels measured traces.
        """
        rng = self.rng
        if profile_index is None:
            profile_index = int(rng.integers(len(self.profiles)))
        if not 0 <= profile_index < len(self.profiles):
            raise DatasetError(
                f"profile index {profile_index} outside "
                f"[0, {len(self.profiles)})"
            )
        profile = self.profiles[profile_index]
        margin = 0.3
        position = self.area.sample_interior(rng, margin=margin)
        velocity = np.zeros(2)
        goal = self._sample_goal(position, profile, margin)
        points = [position.copy()]
        paused_steps = 0

        for _ in range(self.num_points - 1):
            if paused_steps > 0:
                paused_steps -= 1
                velocity *= 0.4
            else:
                if rng.random() < profile.pause_probability:
                    paused_steps = int(rng.integers(1, 4))
                to_goal = goal - position
                distance = float(np.linalg.norm(to_goal))
                if distance < 0.25:
                    goal = self._sample_goal(position, profile, margin)
                    to_goal = goal - position
                    distance = float(np.linalg.norm(to_goal))
                desired_velocity = to_goal / max(distance, 1e-9) * profile.preferred_speed
                # Second-order steering: bounded pull toward desired velocity.
                acceleration = 2.0 * (desired_velocity - velocity)
                acceleration += rng.normal(0.0, profile.jitter, 2)
                velocity = velocity + acceleration * self.dt
                speed = float(np.linalg.norm(velocity))
                max_speed = 1.6 * profile.preferred_speed + 0.1
                if speed > max_speed:
                    velocity *= max_speed / speed
            position = self.area.clamp(position + velocity * self.dt, margin=margin)
            points.append(position.copy())

        trajectory = Trajectory(np.vstack(points), dt=self.dt)
        return trajectory.replace(label=range_class_of_trajectory(trajectory))

    def _sample_goal(self, position: np.ndarray, profile: MotionProfile,
                     margin: float) -> np.ndarray:
        rng = self.rng
        angle = rng.uniform(0.0, 2.0 * np.pi)
        radius = rng.uniform(0.3, 1.0) * profile.goal_radius
        candidate = position + radius * np.array([np.cos(angle), np.sin(angle)])
        return self.area.clamp(candidate, margin=margin)

    def build_dataset(self, num_traces: int, *,
                      balanced: bool = True) -> TrajectoryDataset:
        """Generate a dataset of traces.

        With ``balanced=True``, profiles are cycled so every activity level
        is equally represented (the realized class mix still varies since
        labels come from measured ranges).
        """
        if num_traces < 1:
            raise DatasetError("num_traces must be >= 1")
        trajectories = []
        for i in range(num_traces):
            profile = i % len(self.profiles) if balanced else None
            trajectories.append(self.sample_trajectory(profile))
        return TrajectoryDataset(trajectories)


def rectangle_path(center: np.ndarray, width: float, height: float,
                   num_points: int, dt: float) -> Trajectory:
    """A rectangular walking loop around ``center``."""
    half_w, half_h = width / 2.0, height / 2.0
    corners = np.array([
        [-half_w, -half_h], [half_w, -half_h], [half_w, half_h],
        [-half_w, half_h], [-half_w, -half_h],
    ]) + center
    # Arc-length parameterization over the 4 sides.
    segment_lengths = np.linalg.norm(np.diff(corners, axis=0), axis=1)
    cumulative = np.concatenate([[0.0], np.cumsum(segment_lengths)])
    s = np.linspace(0.0, cumulative[-1], num_points)
    xs = np.interp(s, cumulative, corners[:, 0])
    ys = np.interp(s, cumulative, corners[:, 1])
    return Trajectory(np.column_stack([xs, ys]), dt=dt)


def s_curve_path(center: np.ndarray, width: float, height: float,
                 num_points: int, dt: float) -> Trajectory:
    """An S-shaped sweep across the room."""
    t = np.linspace(0.0, 1.0, num_points)
    xs = center[0] + (t - 0.5) * width
    ys = center[1] + (height / 2.0) * np.sin(2.0 * np.pi * t)
    return Trajectory(np.column_stack([xs, ys]), dt=dt)


_ACTIVITY_KINDS = ("walk", "sway", "fall", "turn")


@dataclasses.dataclass(frozen=True)
class Activity:
    """One named motion primitive of the activity library.

    Attributes:
        name: registry key (``ACTIVITIES[name]``).
        kind: stepping mechanics — ``walk`` (waypoint-seeking walker),
            ``sway`` (anchored body sway: sitting, gesturing), ``fall``
            (a collapse lurch followed by stillness on the floor), or
            ``turn`` (pause-and-turn pacing: straight dashes separated by
            pauses with a heading change).
        profile: the second-order walker parameters driving the segment.
        description: one-line catalog summary.
        sway_amplitude: max drift from the anchor point, meters
            (``sway`` only).
        lurch_speed: initial collapse speed, m/s (``fall`` only).
        lurch_duration_s: collapse span before the subject lies still,
            seconds (``fall`` only).
        dash_span_s: straight-dash span between turns, seconds
            (``turn`` only).
    """

    name: str
    kind: str
    profile: MotionProfile
    description: str = ""
    sway_amplitude: float = 0.15
    lurch_speed: float = 0.0
    lurch_duration_s: float = 0.0
    dash_span_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _ACTIVITY_KINDS:
            raise DatasetError(
                f"activity kind must be one of {_ACTIVITY_KINDS}, "
                f"got {self.kind!r}"
            )
        if not self.name:
            raise DatasetError("activity name must not be empty")
        if self.kind == "sway" and self.sway_amplitude <= 0:
            raise DatasetError("sway activities need sway_amplitude > 0")
        if self.kind == "fall" and (self.lurch_speed <= 0
                                    or self.lurch_duration_s <= 0):
            raise DatasetError(
                "fall activities need lurch_speed and lurch_duration_s > 0"
            )
        if self.kind == "turn" and self.dash_span_s <= 0:
            raise DatasetError("turn activities need dash_span_s > 0")

    def speed_limit(self) -> float:
        """Hard per-step speed bound the stepper enforces, m/s."""
        return max(1.6 * self.profile.preferred_speed + 0.1, self.lurch_speed)


#: Every registered activity, keyed by name. The single dispatch point for
#: activity lookup — scenario specs reference activities only by name.
ACTIVITIES: dict[str, Activity] = {}


def register_activity(activity: Activity) -> Activity:
    """Register an activity under its name; duplicate names are rejected."""
    if activity.name in ACTIVITIES:
        raise DatasetError(f"duplicate activity registration: {activity.name}")
    ACTIVITIES[activity.name] = activity
    return activity


def get_activity(name: str) -> Activity:
    """Look up a registered activity by name."""
    activity = ACTIVITIES.get(name)
    if activity is None:
        known = ", ".join(sorted(ACTIVITIES))
        raise DatasetError(f"unknown activity {name!r}; known: {known}")
    return activity


def activity_names() -> tuple[str, ...]:
    """Sorted names of every registered activity."""
    return tuple(sorted(ACTIVITIES))


@dataclasses.dataclass(frozen=True)
class ProgramStep:
    """One program segment: an activity name and its share of the trace."""

    activity: str
    fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.fraction <= 0:
            raise DatasetError(
                f"program step fraction must be positive, got {self.fraction}"
            )


@dataclasses.dataclass(frozen=True)
class ActivityProgram:
    """A per-human program: activities executed in order.

    Fractions are relative weights — the synthesized trace allots each
    step ``fraction / sum(fractions)`` of its points (largest-remainder
    apportionment, so every step gets at least its floor share and the
    counts always sum exactly).
    """

    steps: tuple[ProgramStep, ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise DatasetError("a program needs at least one step")

    @classmethod
    def of(cls, *activities: str) -> ActivityProgram:
        """An equal-share program over ``activities`` in order."""
        return cls(tuple(ProgramStep(name) for name in activities))


def program_speed_limit(program: ActivityProgram) -> float:
    """The hard speed bound of a program: max over its activities, m/s."""
    return max(get_activity(step.activity).speed_limit()
               for step in program.steps)


def _apportion_steps(program: ActivityProgram, total_steps: int) -> list[int]:
    """Largest-remainder split of ``total_steps`` across program steps."""
    total_fraction = sum(step.fraction for step in program.steps)
    quotas = [step.fraction / total_fraction * total_steps
              for step in program.steps]
    counts = [int(q) for q in quotas]
    remainder = total_steps - sum(counts)
    by_fractional = sorted(range(len(quotas)),
                           key=lambda i: (quotas[i] - counts[i], -i),
                           reverse=True)
    for index in by_fractional[:remainder]:
        counts[index] += 1
    return counts


def _sample_goal_near(position: np.ndarray, radius: float, area: Rectangle,
                      margin: float, rng: np.random.Generator) -> np.ndarray:
    angle = rng.uniform(0.0, 2.0 * np.pi)
    r = rng.uniform(0.3, 1.0) * radius
    candidate = position + r * np.array([np.cos(angle), np.sin(angle)])
    return area.clamp(candidate, margin=margin)


def _clamp_speed(velocity: np.ndarray, limit: float) -> np.ndarray:
    speed = float(np.linalg.norm(velocity))
    if speed > limit:
        velocity = velocity * (limit / speed)
    return velocity


def _step_walk(activity: Activity, area: Rectangle, margin: float,
               position: np.ndarray, velocity: np.ndarray, num_steps: int,
               dt: float, rng: np.random.Generator,
               ) -> tuple[list[np.ndarray], np.ndarray, np.ndarray]:
    profile = activity.profile
    limit = activity.speed_limit()
    goal = _sample_goal_near(position, profile.goal_radius, area, margin, rng)
    points: list[np.ndarray] = []
    paused_steps = 0
    for _ in range(num_steps):
        if paused_steps > 0:
            paused_steps -= 1
            velocity = velocity * 0.4
        else:
            if rng.random() < profile.pause_probability:
                paused_steps = int(rng.integers(1, 4))
            to_goal = goal - position
            distance = float(np.linalg.norm(to_goal))
            if distance < 0.25:
                goal = _sample_goal_near(position, profile.goal_radius,
                                         area, margin, rng)
                to_goal = goal - position
                distance = float(np.linalg.norm(to_goal))
            desired = to_goal / max(distance, 1e-9) * profile.preferred_speed
            acceleration = 2.0 * (desired - velocity)
            acceleration = acceleration + rng.normal(0.0, profile.jitter, 2)
            velocity = _clamp_speed(velocity + acceleration * dt, limit)
        position = area.clamp(position + velocity * dt, margin=margin)
        points.append(position.copy())
    return points, velocity, position


def _step_sway(activity: Activity, area: Rectangle, margin: float,
               position: np.ndarray, velocity: np.ndarray, num_steps: int,
               dt: float, rng: np.random.Generator,
               ) -> tuple[list[np.ndarray], np.ndarray, np.ndarray]:
    profile = activity.profile
    limit = activity.speed_limit()
    anchor = position.copy()
    points: list[np.ndarray] = []
    for _ in range(num_steps):
        acceleration = 4.0 * (anchor - position) - 2.0 * velocity
        acceleration = acceleration + rng.normal(0.0, profile.jitter, 2)
        velocity = _clamp_speed(velocity + acceleration * dt, limit)
        candidate = position + velocity * dt
        offset = candidate - anchor
        drift = float(np.linalg.norm(offset))
        if drift > activity.sway_amplitude:
            candidate = anchor + offset * (activity.sway_amplitude / drift)
        position = area.clamp(candidate, margin=margin)
        points.append(position.copy())
    return points, velocity, position


def _step_fall(activity: Activity, area: Rectangle, margin: float,
               position: np.ndarray, velocity: np.ndarray, num_steps: int,
               dt: float, rng: np.random.Generator,
               ) -> tuple[list[np.ndarray], np.ndarray, np.ndarray]:
    heading = rng.uniform(0.0, 2.0 * np.pi)
    direction = np.array([np.cos(heading), np.sin(heading)])
    lurch_steps = max(1, round(activity.lurch_duration_s / dt))
    points: list[np.ndarray] = []
    for step in range(num_steps):
        if step < lurch_steps:
            # Collapse: speed decays linearly to zero over the lurch.
            fraction = 1.0 - step / lurch_steps
            velocity = activity.lurch_speed * fraction * direction
        else:
            velocity = np.zeros(2)
        position = area.clamp(position + velocity * dt, margin=margin)
        points.append(position.copy())
    return points, velocity, position


def _step_turn(activity: Activity, area: Rectangle, margin: float,
               position: np.ndarray, velocity: np.ndarray, num_steps: int,
               dt: float, rng: np.random.Generator,
               ) -> tuple[list[np.ndarray], np.ndarray, np.ndarray]:
    profile = activity.profile
    limit = activity.speed_limit()
    dash_steps = max(1, round(activity.dash_span_s / dt))
    pause_steps = max(1, dash_steps // 2)
    heading = rng.uniform(0.0, 2.0 * np.pi)
    points: list[np.ndarray] = []
    phase_step = 0
    pausing = False
    for _ in range(num_steps):
        if pausing:
            velocity = velocity * 0.4
            phase_step += 1
            if phase_step >= pause_steps:
                sign = 1.0 if rng.random() < 0.5 else -1.0
                heading = heading + sign * rng.uniform(np.pi / 3.0,
                                                       2.0 * np.pi / 3.0)
                pausing, phase_step = False, 0
        else:
            direction = np.array([np.cos(heading), np.sin(heading)])
            desired = profile.preferred_speed * direction
            acceleration = 2.0 * (desired - velocity)
            acceleration = acceleration + rng.normal(0.0, profile.jitter, 2)
            velocity = _clamp_speed(velocity + acceleration * dt, limit)
            phase_step += 1
            if phase_step >= dash_steps:
                pausing, phase_step = True, 0
        position = area.clamp(position + velocity * dt, margin=margin)
        points.append(position.copy())
    return points, velocity, position


_STEPPERS = {"walk": _step_walk, "sway": _step_sway, "fall": _step_fall,
             "turn": _step_turn}


def synthesize_program(program: ActivityProgram, area: Rectangle, *,
                       num_points: int = constants.TRACE_NUM_POINTS,
                       duration: float = constants.TRACE_DURATION_S,
                       rng: np.random.Generator,
                       start: tuple[float, float] | np.ndarray | None = None,
                       margin: float = 0.3) -> Trajectory:
    """Synthesize one trace executing ``program`` inside ``area``.

    Position and velocity carry over between segments, so a
    walk-then-fall program collapses from wherever the walk ended. The
    trace stays inside ``area`` (shrunk by ``margin``) and below
    :func:`program_speed_limit` by construction; determinism comes only
    from ``rng``.
    """
    if num_points < 2:
        raise DatasetError("traces need at least 2 points")
    if duration <= 0:
        raise DatasetError("duration must be positive")
    activities = [get_activity(step.activity) for step in program.steps]
    counts = _apportion_steps(program, num_points - 1)
    dt = duration / (num_points - 1)
    if start is None:
        position = area.sample_interior(rng, margin=margin)
    else:
        position = area.clamp(np.asarray(start, dtype=float), margin=margin)
    velocity = np.zeros(2)
    points = [position.copy()]
    for activity, count in zip(activities, counts):
        if count == 0:
            continue
        stepper = _STEPPERS[activity.kind]
        segment, velocity, position = stepper(activity, area, margin,
                                              position, velocity, count,
                                              dt, rng)
        points.extend(segment)
    trajectory = Trajectory(np.vstack(points), dt=dt)
    return trajectory.replace(label=range_class_of_trajectory(trajectory))


register_activity(Activity(
    "sit", "sway", MotionProfile(preferred_speed=0.03, goal_radius=0.3,
                                 pause_probability=0.5, jitter=0.02),
    description="seated subject: centimeter-scale torso sway only",
    sway_amplitude=0.06,
))
register_activity(Activity(
    "gesture", "sway", MotionProfile(preferred_speed=0.15, goal_radius=0.4,
                                     pause_probability=0.1, jitter=0.30),
    description="standing still but gesturing: fast sway around one spot",
    sway_amplitude=0.30,
))
register_activity(Activity(
    "fall", "fall", MotionProfile(preferred_speed=0.9, goal_radius=1.0,
                                  pause_probability=0.0, jitter=0.05),
    description="a collapse lurch, then lying still on the floor",
    lurch_speed=2.2, lurch_duration_s=0.6,
))
register_activity(Activity(
    "pause-and-turn", "turn",
    MotionProfile(preferred_speed=0.8, goal_radius=2.0,
                  pause_probability=0.0, jitter=0.15),
    description="pacing: straight dashes separated by pause-and-turn",
    dash_span_s=1.6,
))
register_activity(Activity(
    "shuffle", "walk", DEFAULT_PROFILES[1],
    description="slow local pottering (gait variant)",
))
register_activity(Activity(
    "walk", "walk", DEFAULT_PROFILES[2],
    description="normal-pace waypoint walking (gait variant)",
))
register_activity(Activity(
    "stride", "walk", DEFAULT_PROFILES[4],
    description="brisk room-crossing walking (gait variant)",
))
