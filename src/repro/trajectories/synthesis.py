"""Human-motion simulator: the substitute for the paper's office dataset.

Produces 50-point, 10-second 2-D traces (the paper's trace format) using a
waypoint-seeking second-order walker: the subject picks goals inside a
walking area and steers toward them with bounded acceleration, smooth
heading changes, occasional pauses, and gait jitter. Five
:class:`MotionProfile` activity levels span near-stationary shuffling to
brisk walking, giving the dataset the range-of-motion diversity the paper's
5-class conditioning relies on.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import constants
from repro.errors import DatasetError
from repro.geometry import Rectangle
from repro.trajectories.dataset import TrajectoryDataset
from repro.trajectories.labels import range_class_of_trajectory
from repro.types import Trajectory

__all__ = ["HumanMotionSimulator", "MotionProfile"]


@dataclasses.dataclass(frozen=True)
class MotionProfile:
    """Parameters of one activity level.

    Attributes:
        preferred_speed: cruising speed toward the goal, m/s.
        goal_radius: goals are sampled within this radius of the current
            position — small radii keep motion local (pottering), large
            radii produce room-crossing walks.
        pause_probability: per-step chance of standing still for a moment.
        jitter: std-dev of per-step acceleration noise (gait sway), m/s^2.
    """

    preferred_speed: float
    goal_radius: float
    pause_probability: float
    jitter: float

    def __post_init__(self) -> None:
        if self.preferred_speed < 0 or self.goal_radius <= 0:
            raise DatasetError("speed must be >= 0 and goal radius positive")
        if not 0 <= self.pause_probability < 1:
            raise DatasetError("pause probability must be in [0, 1)")
        if self.jitter < 0:
            raise DatasetError("jitter must be >= 0")


DEFAULT_PROFILES = (
    MotionProfile(preferred_speed=0.05, goal_radius=0.4,
                  pause_probability=0.35, jitter=0.05),
    MotionProfile(preferred_speed=0.25, goal_radius=1.0,
                  pause_probability=0.20, jitter=0.10),
    MotionProfile(preferred_speed=0.55, goal_radius=2.2,
                  pause_probability=0.10, jitter=0.15),
    MotionProfile(preferred_speed=0.95, goal_radius=4.0,
                  pause_probability=0.05, jitter=0.20),
    MotionProfile(preferred_speed=1.40, goal_radius=7.0,
                  pause_probability=0.02, jitter=0.25),
)
"""One profile per range class, slowest to fastest."""


class HumanMotionSimulator:
    """Generates human-like 2-D traces inside a walking area."""

    def __init__(self, area: Rectangle | None = None, *,
                 num_points: int = constants.TRACE_NUM_POINTS,
                 duration: float = constants.TRACE_DURATION_S,
                 profiles: tuple[MotionProfile, ...] = DEFAULT_PROFILES,
                 rng: np.random.Generator | None = None) -> None:
        if num_points < 2:
            raise DatasetError("traces need at least 2 points")
        if duration <= 0:
            raise DatasetError("duration must be positive")
        if not profiles:
            raise DatasetError("need at least one motion profile")
        if area is None:
            area = Rectangle.from_size(*constants.OFFICE_SIZE_M)
        self.area = area
        self.num_points = num_points
        self.duration = duration
        self.profiles = profiles
        self.rng = rng if rng is not None else np.random.default_rng(0)

    @property
    def dt(self) -> float:
        return self.duration / (self.num_points - 1)

    def sample_trajectory(self, profile_index: int | None = None) -> Trajectory:
        """Generate one trace; profile drawn at random when unspecified.

        The trajectory's ``label`` is its *measured* range class (from the
        realized motion), not the requested profile: a fast profile that
        happened to dawdle is labelled by what it actually did, exactly as
        the paper labels measured traces.
        """
        rng = self.rng
        if profile_index is None:
            profile_index = int(rng.integers(len(self.profiles)))
        if not 0 <= profile_index < len(self.profiles):
            raise DatasetError(
                f"profile index {profile_index} outside "
                f"[0, {len(self.profiles)})"
            )
        profile = self.profiles[profile_index]
        margin = 0.3
        position = self.area.sample_interior(rng, margin=margin)
        velocity = np.zeros(2)
        goal = self._sample_goal(position, profile, margin)
        points = [position.copy()]
        paused_steps = 0

        for _ in range(self.num_points - 1):
            if paused_steps > 0:
                paused_steps -= 1
                velocity *= 0.4
            else:
                if rng.random() < profile.pause_probability:
                    paused_steps = int(rng.integers(1, 4))
                to_goal = goal - position
                distance = float(np.linalg.norm(to_goal))
                if distance < 0.25:
                    goal = self._sample_goal(position, profile, margin)
                    to_goal = goal - position
                    distance = float(np.linalg.norm(to_goal))
                desired_velocity = to_goal / max(distance, 1e-9) * profile.preferred_speed
                # Second-order steering: bounded pull toward desired velocity.
                acceleration = 2.0 * (desired_velocity - velocity)
                acceleration += rng.normal(0.0, profile.jitter, 2)
                velocity = velocity + acceleration * self.dt
                speed = float(np.linalg.norm(velocity))
                max_speed = 1.6 * profile.preferred_speed + 0.1
                if speed > max_speed:
                    velocity *= max_speed / speed
            position = self.area.clamp(position + velocity * self.dt, margin=margin)
            points.append(position.copy())

        trajectory = Trajectory(np.vstack(points), dt=self.dt)
        return trajectory.replace(label=range_class_of_trajectory(trajectory))

    def _sample_goal(self, position: np.ndarray, profile: MotionProfile,
                     margin: float) -> np.ndarray:
        rng = self.rng
        angle = rng.uniform(0.0, 2.0 * np.pi)
        radius = rng.uniform(0.3, 1.0) * profile.goal_radius
        candidate = position + radius * np.array([np.cos(angle), np.sin(angle)])
        return self.area.clamp(candidate, margin=margin)

    def build_dataset(self, num_traces: int, *,
                      balanced: bool = True) -> TrajectoryDataset:
        """Generate a dataset of traces.

        With ``balanced=True``, profiles are cycled so every activity level
        is equally represented (the realized class mix still varies since
        labels come from measured ranges).
        """
        if num_traces < 1:
            raise DatasetError("num_traces must be >= 1")
        trajectories = []
        for i in range(num_traces):
            profile = i % len(self.profiles) if balanced else None
            trajectories.append(self.sample_trajectory(profile))
        return TrajectoryDataset(trajectories)
