"""Core value types shared across the library.

The central type is :class:`Trajectory`, a uniformly-sampled sequence of 2-D
positions. Every subsystem (motion simulator, GAN, reflector controller,
radar tracker, metrics) speaks this type, so conversions live here rather
than being re-derived ad hoc at call sites.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Iterator, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["PolarPoint", "Trajectory", "as_points_array"]


def as_points_array(points: Sequence | np.ndarray) -> np.ndarray:
    """Coerce ``points`` into a float ``(T, 2)`` array.

    Raises :class:`ConfigurationError` when the input cannot be interpreted
    as a sequence of 2-D points or when it contains non-finite values.
    """
    arr = np.asarray(points, dtype=float)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ConfigurationError(
            f"expected an (T, 2) array of 2-D points, got shape {arr.shape}"
        )
    if arr.shape[0] == 0:
        raise ConfigurationError("trajectory must contain at least one point")
    if not np.all(np.isfinite(arr)):
        raise ConfigurationError("trajectory points must be finite")
    return arr


@dataclasses.dataclass(frozen=True)
class PolarPoint:
    """A point in polar coordinates relative to some origin.

    ``radius`` is in meters; ``angle`` is in radians, measured
    counter-clockwise from the +x axis.
    """

    radius: float
    angle: float

    def to_cartesian(self, origin: tuple[float, float] = (0.0, 0.0)) -> np.ndarray:
        """Return the (x, y) position of this polar point."""
        ox, oy = origin
        return np.array(
            [ox + self.radius * math.cos(self.angle),
             oy + self.radius * math.sin(self.angle)]
        )


@dataclasses.dataclass(frozen=True)
class Trajectory:
    """A uniformly-sampled 2-D trajectory.

    Attributes:
        points: ``(T, 2)`` float array of (x, y) positions in meters.
        dt: sampling interval in seconds between consecutive points.
        label: optional range-of-motion class label (Sec. 6 of the paper).
    """

    points: np.ndarray
    dt: float
    label: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "points", as_points_array(self.points))
        if self.dt <= 0:
            raise ConfigurationError(f"dt must be positive, got {self.dt}")

    def __len__(self) -> int:
        return self.points.shape[0]

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self.points)

    @property
    def duration(self) -> float:
        """Total time spanned by the trajectory in seconds."""
        return (len(self) - 1) * self.dt

    @property
    def times(self) -> np.ndarray:
        """Sample times, starting at zero."""
        return np.arange(len(self)) * self.dt

    def displacements(self) -> np.ndarray:
        """Per-step displacement vectors, shape ``(T-1, 2)``."""
        return np.diff(self.points, axis=0)

    def step_lengths(self) -> np.ndarray:
        """Per-step Euclidean step lengths, shape ``(T-1,)``."""
        return np.linalg.norm(self.displacements(), axis=1)

    def path_length(self) -> float:
        """Total arc length of the trajectory in meters."""
        return float(self.step_lengths().sum())

    def speeds(self) -> np.ndarray:
        """Per-step speeds in m/s, shape ``(T-1,)``."""
        return self.step_lengths() / self.dt

    def headings(self) -> np.ndarray:
        """Per-step headings in radians, shape ``(T-1,)``."""
        d = self.displacements()
        return np.arctan2(d[:, 1], d[:, 0])

    def turning_angles(self) -> np.ndarray:
        """Signed turning angles between consecutive steps, wrapped to [-pi, pi]."""
        h = self.headings()
        raw = np.diff(h)
        return (raw + np.pi) % (2.0 * np.pi) - np.pi

    def motion_range(self) -> float:
        """The trajectory's diameter: largest distance between two points.

        This is the "range of motion" the paper classifies traces by
        (Sec. 6); unlike a bounding-box measure it is rotation invariant.
        """
        diffs = self.points[:, None, :] - self.points[None, :, :]
        return float(np.sqrt((diffs ** 2).sum(axis=2)).max())

    def centroid(self) -> np.ndarray:
        """Mean position, shape ``(2,)``."""
        return self.points.mean(axis=0)

    def centered(self) -> "Trajectory":
        """Return a copy translated so the centroid is at the origin."""
        return self.replace(points=self.points - self.centroid())

    def translated(self, offset: Sequence[float]) -> "Trajectory":
        """Return a copy translated by ``offset`` = (dx, dy)."""
        off = np.asarray(offset, dtype=float)
        if off.shape != (2,):
            raise ConfigurationError(f"offset must have shape (2,), got {off.shape}")
        return self.replace(points=self.points + off)

    def rotated(self, angle: float, about: Sequence[float] = (0.0, 0.0)) -> "Trajectory":
        """Return a copy rotated by ``angle`` radians about ``about``."""
        c, s = math.cos(angle), math.sin(angle)
        rot = np.array([[c, -s], [s, c]])
        pivot = np.asarray(about, dtype=float)
        return self.replace(points=(self.points - pivot) @ rot.T + pivot)

    def scaled(self, factor: float) -> "Trajectory":
        """Return a copy scaled about the origin by ``factor``."""
        if factor <= 0:
            raise ConfigurationError(f"scale factor must be positive, got {factor}")
        return self.replace(points=self.points * factor)

    def resampled(self, num_points: int) -> "Trajectory":
        """Return a copy resampled to ``num_points`` via linear interpolation."""
        if num_points < 2:
            raise ConfigurationError("resampling needs at least 2 points")
        old_t = self.times
        new_t = np.linspace(old_t[0], old_t[-1], num_points)
        new_dt = self.duration / (num_points - 1) if self.duration > 0 else self.dt
        xs = np.interp(new_t, old_t, self.points[:, 0])
        ys = np.interp(new_t, old_t, self.points[:, 1])
        return Trajectory(np.column_stack([xs, ys]), dt=new_dt, label=self.label)

    def to_polar(self, origin: Sequence[float] = (0.0, 0.0)) -> list[PolarPoint]:
        """Convert to polar coordinates relative to ``origin``."""
        ox, oy = (float(v) for v in origin)
        rel = self.points - np.array([ox, oy])
        radii = np.hypot(rel[:, 0], rel[:, 1])
        angles = np.arctan2(rel[:, 1], rel[:, 0])
        return [PolarPoint(float(r), float(a)) for r, a in zip(radii, angles)]

    def position_at(self, t: float) -> np.ndarray:
        """Linearly interpolated position at time ``t`` (clamped to the span)."""
        t = min(max(t, 0.0), self.duration)
        x = np.interp(t, self.times, self.points[:, 0])
        y = np.interp(t, self.times, self.points[:, 1])
        return np.array([x, y])

    def replace(self, **changes) -> "Trajectory":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    @staticmethod
    def from_polar(points: Sequence[PolarPoint], dt: float,
                   origin: Sequence[float] = (0.0, 0.0),
                   label: int | None = None) -> "Trajectory":
        """Build a trajectory from polar points around ``origin``."""
        cart = np.array([p.to_cartesian(tuple(origin)) for p in points])
        return Trajectory(cart, dt=dt, label=label)
