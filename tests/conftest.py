"""Shared fixtures for the test suite.

Expensive artifacts (trained tiny GAN, sensing sessions) are session-scoped
and memoized so the suite stays fast while many tests exercise them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.artifacts import motion_dataset, trained_gan
from repro.experiments.environments import home_environment, office_environment
from repro.trajectories import HumanMotionSimulator
from repro.types import Trajectory


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh, fixed-seed generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def office_env():
    return office_environment()


@pytest.fixture(scope="session")
def home_env():
    return home_environment()


@pytest.fixture(scope="session")
def small_dataset():
    """120 simulated human traces (memoized across the suite)."""
    return motion_dataset(120, seed=0)


@pytest.fixture(scope="session")
def tiny_gan():
    """A tiny trained GAN shared by all tests that need one."""
    return trained_gan("tiny", seed=0)


@pytest.fixture()
def straight_walk() -> Trajectory:
    """A 50-point straight walk used across radar tests."""
    points = np.linspace([3.0, 2.0], [6.0, 5.0], 50)
    return Trajectory(points, dt=10.0 / 49.0)


@pytest.fixture()
def sample_trajectory(rng) -> Trajectory:
    """One simulated human trace."""
    simulator = HumanMotionSimulator(rng=rng)
    return simulator.sample_trajectory(profile_index=2)
