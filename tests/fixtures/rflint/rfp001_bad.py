"""Bad fixture for RFP001: hidden global RNG state."""

import random

import numpy as np
from random import shuffle  # noqa: F401  (banned import form)

np.random.seed(1234)


def draw() -> float:
    return random.random() + np.random.rand()
