"""Good fixture for RFP001: RNGs are explicit, seeded Generators."""

import numpy as np


def make_rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def draw(rng: np.random.Generator) -> float:
    return float(rng.random())
