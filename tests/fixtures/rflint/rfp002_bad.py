"""Bad fixture for RFP002: wall-clock identity and set-order dependence."""

import time
import uuid


def make_run_record() -> dict:
    return {"run_id": str(uuid.uuid4()), "started": time.time()}


def collect(values: dict) -> list:
    out = []
    for key in {"fig7", "fig9", "table1"}:
        out.append(values.get(key))
    return out
