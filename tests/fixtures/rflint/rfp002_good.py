"""Good fixture for RFP002: monotonic timing, order-stable iteration."""

import time


def elapsed_since(started: float) -> float:
    return time.perf_counter() - started


def collect(values: dict, keys: set) -> list:
    return [values.get(key) for key in sorted(keys)]
