"""Bad fixture for RFP003: RF_PROTECT_* read outside repro.config."""

import os
from os import environ, getenv


def backend() -> str:
    direct = os.environ.get("RF_PROTECT_SYNTH", "vectorized")
    via_getenv = getenv("RF_PROTECT_SYNTH")
    subscripted = environ["RF_PROTECT_SYNTH"]
    return via_getenv or subscripted or direct
