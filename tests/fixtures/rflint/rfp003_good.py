"""Good fixture for RFP003: dispatch goes through the typed registry."""

import os

from repro.config import get_synth_backend


def backend() -> str:
    return get_synth_backend()


def unrelated_env() -> str:
    # Non-RF_PROTECT names are out of scope for the registry rule.
    return os.environ.get("HOME", "/root")
