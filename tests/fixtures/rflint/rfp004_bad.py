"""Bad fixture for RFP004: implicit dtypes and complex->magnitude mixups."""

import numpy as np


def make_profile(num_antennas: int, num_samples: int) -> np.ndarray:
    return np.zeros((num_antennas, num_samples))


def magnitude_into_complex(samples: np.ndarray) -> np.ndarray:
    buffer = np.zeros(samples.shape, dtype=complex)
    buffer[0] = np.abs(samples[0])
    buffer[1] = samples[1].real
    return buffer
