"""Good fixture for RFP004: every constructor pins its dtype."""

import numpy as np


def make_profile(num_antennas: int, num_samples: int) -> np.ndarray:
    return np.zeros((num_antennas, num_samples), dtype=complex)


def magnitudes(samples: np.ndarray) -> np.ndarray:
    power = np.empty(samples.shape, dtype=float)
    power[:] = np.abs(samples)
    return power
