"""Bad fixture for RFP005: mutable defaults shared across calls."""


def append_record(record: dict, log: list = []) -> list:
    log.append(record)
    return log


def merge(overrides: dict = {}, *, tags: set = set()) -> dict:
    return {**overrides, "tags": tags}
