"""Good fixture for RFP005: None sentinel, construct per call."""


def append_record(record: dict, log: list | None = None) -> list:
    entries = [] if log is None else log
    entries.append(record)
    return entries


def merge(overrides: dict | None = None) -> dict:
    return dict(overrides or {})
