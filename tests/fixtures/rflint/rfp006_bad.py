"""Bad fixture for RFP006: errors vanish without a trace."""


def load(path: str) -> str:
    try:
        with open(path, encoding="utf-8") as handle:
            return handle.read()
    except:
        return ""


def probe(path: str) -> None:
    try:
        open(path, encoding="utf-8").close()
    except OSError:
        pass
