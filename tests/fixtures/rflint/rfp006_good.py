"""Good fixture for RFP006: failures are logged or propagated."""

import logging

logger = logging.getLogger(__name__)


def load(path: str) -> str:
    try:
        with open(path, encoding="utf-8") as handle:
            return handle.read()
    except OSError as error:
        logger.warning("could not read %s: %s", path, error)
        return ""
