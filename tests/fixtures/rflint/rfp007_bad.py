"""Bad fixture for RFP007: unseeded RNGs and leaky module state."""

import numpy as np

from repro.radar import frontend
from repro.radar.frontend import SYNTH_STATS


def test_noise_changes_every_run() -> None:
    rng = np.random.default_rng()
    assert rng.random() >= 0.0


def test_mutates_module_state() -> None:
    frontend.logger = None
    SYNTH_STATS.frames_synthesized = 0
