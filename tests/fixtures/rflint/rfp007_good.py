"""Good fixture for RFP007: seeded RNGs, state isolated via monkeypatch."""

import numpy as np

from repro.radar.frontend import SYNTH_STATS


def test_seeded_rng() -> None:
    rng = np.random.default_rng(1234)
    assert rng.random() >= 0.0


def test_with_monkeypatch(monkeypatch) -> None:
    monkeypatch.setattr(SYNTH_STATS, "frames_synthesized", 0)
    assert SYNTH_STATS.frames_synthesized == 0
