"""Bad: blocking calls inside ``async def`` bodies (RFP008)."""

import subprocess
import time
from pathlib import Path


async def poll_status() -> None:
    time.sleep(0.1)


async def load_manifest(path: Path) -> str:
    return path.read_text(encoding="utf-8")


async def dump_log(path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("done")


async def shell_out() -> None:
    subprocess.run(["true"], check=True)
