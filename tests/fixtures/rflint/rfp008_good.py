"""Good: coroutines keep blocking work off the event loop (RFP008)."""

import asyncio
import time


async def poll_status() -> None:
    await asyncio.sleep(0.1)


async def load_manifest(path: str) -> str:
    def read() -> str:
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()

    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, read)


def warm_up() -> None:
    # Synchronous functions may block: they run on executor threads.
    time.sleep(0.0)
