"""Bad fixture for RFP009: backend branching outside the kernel registry."""

from repro.config import get_pipeline_backend, get_synth_backend


def synthesize(components: list, config: object) -> str:
    if get_synth_backend() == "naive":
        return "per-frame loop"
    return "packed batch"


def beamform(profiles: object) -> str:
    backend = get_pipeline_backend()
    return f"dispatching to {backend}"
