"""Good fixture for RFP009: kernels resolve through the stage registry."""

from repro.radar.stages import KERNELS, Stage


def synthesize(components: list, config: object) -> object:
    kernel = KERNELS.resolve(Stage.SYNTHESIZE)
    return kernel


def beamform(profiles: object) -> object:
    # Explicit backend requests also stay inside the registry.
    return KERNELS.resolve(Stage.BEAMFORM, "naive")
