"""Bad: lock-guarded session state touched outside the lock (RFP010)."""

import asyncio


class Session:
    def __init__(self) -> None:
        self.lock = asyncio.Lock()
        self.frames = 0

    async def ingest(self, count: int) -> None:
        async with self.lock:
            self.frames = self.frames + count

    def frames_seen(self) -> int:
        # Reads state mutated under the lock, without holding it.
        return self.frames
