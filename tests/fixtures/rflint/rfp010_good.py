"""Good: every touch of lock-guarded state holds the lock (RFP010).

``_advance`` mutates the guarded field without taking the lock itself,
but it is only ever called *with the lock held* — the call-graph closure
exempts it.
"""

import asyncio


class Session:
    def __init__(self) -> None:
        self.lock = asyncio.Lock()
        self.frames = 0

    def _advance(self, count: int) -> None:
        self.frames = self.frames + count

    async def ingest(self, count: int) -> None:
        async with self.lock:
            self._advance(count)

    async def frames_seen(self) -> int:
        async with self.lock:
            return self.frames
