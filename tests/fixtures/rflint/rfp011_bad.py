"""Bad: kernel registrations break the StageFn protocol (RFP011)."""

from repro.radar.stages import KERNELS, Stage


@KERNELS.register(Stage.DOA, "naive")
def doa_naive(ctx, window):
    # Two required parameters: does not satisfy StageFn.
    return ctx


@KERNELS.register(Stage.DOA, "naive")
def doa_naive_again(ctx):
    # Duplicate (stage, backend) slot: raises at import time.
    return ctx
