"""Good: one conforming kernel per (stage, backend) slot (RFP011)."""

from repro.radar.stages import KERNELS, Stage


@KERNELS.register(Stage.DOA, "naive")
def doa_naive(ctx):
    return ctx


@KERNELS.register(Stage.DOA, "vectorized")
def doa_vectorized(ctx):
    return ctx


@KERNELS.register(Stage.RANGE_FFT, backend="naive")
def range_fft_naive(*args):
    # Pure-varargs adapters satisfy the protocol too.
    return args[0]
