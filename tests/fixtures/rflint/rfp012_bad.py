"""Bad: checkpoint payload drifts from its declared schema (RFP012)."""


class Counter:
    CHECKPOINT_VERSION = 1
    CHECKPOINT_FIELDS = ("version", "count")

    def __init__(self) -> None:
        self.count = 0
        self.label = ""

    def checkpoint(self):
        # Writes 'label', which CHECKPOINT_FIELDS never declared.
        return {
            "version": self.CHECKPOINT_VERSION,
            "count": self.count,
            "label": self.label,
        }

    @classmethod
    def from_checkpoint(cls, state):
        # Reads the undeclared key, and never checks CHECKPOINT_VERSION.
        restored = cls()
        restored.count = state["count"]
        restored.label = state["label"]
        return restored
