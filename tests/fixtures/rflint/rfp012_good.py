"""Good: declared, versioned, symmetric checkpoint schema (RFP012)."""


class Counter:
    CHECKPOINT_VERSION = 2
    CHECKPOINT_FIELDS = ("version", "count")

    def __init__(self) -> None:
        self.count = 0

    def checkpoint(self):
        return {
            "version": self.CHECKPOINT_VERSION,
            "count": self.count,
        }

    @classmethod
    def from_checkpoint(cls, state):
        if state["version"] != cls.CHECKPOINT_VERSION:
            raise ValueError("incompatible checkpoint version")
        restored = cls()
        restored.count = state["count"]
        return restored
