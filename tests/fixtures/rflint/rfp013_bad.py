"""Bad: float64 values narrowed into float32 sinks (RFP013)."""

import numpy as np


def accumulate(n: int) -> np.ndarray:
    out = np.zeros(n, dtype=np.float32)
    weights = np.ones(n, dtype=np.float64)
    for index in range(n):
        # float64 element stored into the float32 buffer.
        out[index] = weights[index] * 2.0
    return out


def apply_gain(buffer: np.ndarray, gain: np.float32) -> None:
    buffer *= gain


def driver(n: int) -> None:
    gain = np.float64(2.0)
    # float64 argument flowing into apply_gain's float32 parameter.
    apply_gain(np.zeros(n, dtype=np.float32), gain)
