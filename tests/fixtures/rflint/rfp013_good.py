"""Good: dtype tags stay consistent end to end (RFP013)."""

import numpy as np


def accumulate(n: int) -> np.ndarray:
    out = np.zeros(n, dtype=np.float32)
    weights = np.ones(n, dtype=np.float32)
    for index in range(n):
        out[index] = weights[index]
    return out


def widen(n: int) -> np.ndarray:
    # Widening float32 -> float64 is always safe.
    wide = np.zeros(n, dtype=np.float64)
    wide[0] = np.float32(1.0)
    return wide


def apply_gain(buffer: np.ndarray, gain: np.float32) -> None:
    buffer *= gain


def driver(n: int) -> None:
    gain = np.float32(2.0)
    apply_gain(np.zeros(n, dtype=np.float32), gain)
