"""Bad: coroutines reach blocking code through sync helpers (RFP014).

RFP008 cannot see these — no blocking call appears inside an ``async
def`` body — but the call graph still stalls the event loop.
"""

import time


def settle(delay: float) -> None:
    time.sleep(delay)


def warm_up(delay: float) -> None:
    settle(delay)


async def handle(delay: float) -> None:
    # Two sync hops from here sits time.sleep().
    warm_up(delay)


def rebuild_state() -> int:  # rflint: blocking
    total = 0
    for value in range(1000):
        total += value * value
    return total


async def restore() -> None:
    # Calls a function explicitly marked blocking (CPU-bound).
    rebuild_state()
