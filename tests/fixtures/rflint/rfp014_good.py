"""Good: blocking sync work rides the executor (RFP014)."""

import asyncio
import time


def settle(delay: float) -> None:
    time.sleep(delay)


def label(n: int) -> str:
    # Sync but non-blocking: fine to call from a coroutine.
    return f"req-{n}"


async def handle(delay: float) -> None:
    loop = asyncio.get_running_loop()
    await loop.run_in_executor(None, settle, delay)


async def tag(n: int) -> str:
    return label(n)
