"""Bad fixture for RFP015: unsorted JSON serialization in repro.audit."""

import json
from json import dumps


def chain_body(record: dict) -> str:
    plain = json.dumps(record)
    explicit_false = json.dumps(record, sort_keys=False)
    aliased = dumps(record, separators=(",", ":"))
    non_literal = json.dumps(record, sort_keys=bool(record))
    return plain + explicit_false + aliased + non_literal


def write_record(record: dict, handle) -> None:
    json.dump(record, handle, indent=2)
