"""Good fixture for RFP015: every serialization pins sort_keys=True."""

import json
from json import dumps


def chain_body(record: dict) -> str:
    canonical = json.dumps(record, sort_keys=True, separators=(",", ":"))
    aliased = dumps(record, sort_keys=True)
    return canonical + aliased


def write_record(record: dict, handle) -> None:
    json.dump(record, handle, indent=2, sort_keys=True)


def read_record(handle) -> dict:
    # Deserialization carries no ordering hazard; json.load is fine.
    return json.load(handle)
