"""Bad fixture for RFP016: hand-built scenes bypass the scenario registry."""

from repro.radar import Scene
from repro.scenarios import Environment


def ad_hoc_scene(room: object) -> Scene:
    return Scene(room)


def ad_hoc_environment(parts: dict) -> Environment:
    return Environment(**parts)
