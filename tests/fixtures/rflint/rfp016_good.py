"""Good fixture for RFP016: deployments resolve through the registry."""

from repro.scenarios import build


def scenario_scene(name: str) -> object:
    built = build(name)
    return built.build_scene()


def scenario_environment(name: str) -> object:
    # Environment helpers (make_scene etc.) on a built scenario are fine;
    # only direct Scene/Environment construction is registry bypass.
    return build(name).environment.make_scene()
