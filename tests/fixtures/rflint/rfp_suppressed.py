"""Deliberate violations silenced with inline suppression comments."""

import numpy as np

np.random.seed(0)  # rflint: disable=RFP001


def legacy_probe() -> float:
    return float(np.random.rand())  # rflint: disable=all
