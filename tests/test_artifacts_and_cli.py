"""Tests for the artifact cache, the error hierarchy, and package metadata."""

import numpy as np
import pytest

import repro
from repro import constants, errors
from repro.errors import ExperimentError, ReproError
from repro.experiments.artifacts import motion_dataset, trained_gan


class TestArtifacts:
    def test_dataset_memoized(self):
        first = motion_dataset(50, seed=3)
        second = motion_dataset(50, seed=3)
        assert first is second

    def test_different_seed_different_dataset(self):
        a = motion_dataset(50, seed=4)
        b = motion_dataset(50, seed=5)
        assert a is not b
        assert not np.allclose(a.positions_array(), b.positions_array())

    def test_gan_memoized(self, tiny_gan):
        again = trained_gan("tiny", seed=0)
        assert again is tiny_gan

    def test_unknown_quality_rejected(self):
        with pytest.raises(ExperimentError):
            trained_gan("impossible")

    def test_artifacts_are_usable(self, tiny_gan):
        samples = tiny_gan.sampler.sample(3, rng=np.random.default_rng(0))
        assert len(samples) == 3
        assert tiny_gan.quality == "tiny"


class TestErrorHierarchy:
    @pytest.mark.parametrize("name", [
        "ConfigurationError", "SignalProcessingError", "SceneError",
        "ReflectorError", "TrackingError", "DatasetError", "GradientError",
        "TrainingError", "ExperimentError",
    ])
    def test_all_derive_from_repro_error(self, name):
        error_class = getattr(errors, name)
        assert issubclass(error_class, ReproError)

    def test_catchable_as_base(self):
        from repro.types import Trajectory
        with pytest.raises(ReproError):
            Trajectory([[0, 0]], dt=0.0)


class TestConstants:
    def test_range_resolution_consistent(self):
        assert constants.RANGE_RESOLUTION_M == pytest.approx(
            constants.SPEED_OF_LIGHT / (2 * constants.CHIRP_BANDWIDTH_HZ)
        )

    def test_paper_values(self):
        assert constants.RADAR_NUM_ANTENNAS == 7
        assert constants.PANEL_NUM_ANTENNAS == 6
        assert constants.PANEL_ANTENNA_SPACING_M == pytest.approx(0.20)
        assert constants.TRACE_NUM_POINTS == 50
        assert constants.NUM_RANGE_CLASSES == 5
        assert constants.OFFICE_SIZE_M == (10.0, 6.6)
        assert constants.HOME_SIZE_M == (15.24, 7.62)

    def test_version_exposed(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)
