"""End-to-end tests for ``rfprotect audit`` and the runner/ledger wiring.

The full loop the README documents: run an experiment with
``--record-dir``, keygen from an explicit seed, sign the ledger, verify,
produce a signed report, verify that — then flip one byte and watch each
verification fail. Everything drives the real CLI entry points
(``repro.cli.main`` forwarding included), so these tests pin the process
exit codes CI relies on.
"""

import json

import pytest

from repro.audit import verify_report
from repro.audit.app import load_key_seed, main as audit_main, write_key_file
from repro.audit.ledger import Ledger, verify_chain
from repro.cli import main as cli_main
from repro.config import AUDIT_LEDGER_NAME_VAR
from repro.experiments.runner import run_experiments
from repro.serve.metrics import MetricsRegistry

SEED_HEX = "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60"


@pytest.fixture
def run_dir(tmp_path):
    """A record dir produced by a real (fast) experiment run."""
    target = tmp_path / "run"
    run_experiments(["fig9"], fast=True, workers=1, base_seed=3,
                    duration=3.0, record_dir=str(target))
    return target


@pytest.fixture
def key_file(tmp_path):
    path = tmp_path / "audit-key.json"
    write_key_file(str(path), bytes.fromhex(SEED_HEX))
    return path


def ledger_path(run_dir):
    return run_dir / AUDIT_LEDGER_NAME_VAR.default


class TestRunnerWiring:
    def test_run_appends_ledger_records(self, run_dir):
        verification = verify_chain(str(ledger_path(run_dir)))
        assert verification.ok
        assert verification.length == 1
        record = next(iter(Ledger(str(ledger_path(run_dir))).records()))
        assert record.kind == "experiment_run"
        assert record.payload["experiment_id"] == "fig9"

    def test_records_carry_provenance(self, run_dir):
        record = next(iter(Ledger(str(ledger_path(run_dir))).records()))
        provenance = record.payload["provenance"]
        assert provenance["package_version"]
        assert provenance["config_hash"]
        assert "RF_PROTECT_SYNTH" in provenance["config"]
        summary = record.payload["result_summary"]
        assert "median_errors_m" in summary

    def test_json_record_matches_ledger_payload(self, run_dir):
        json_record = json.loads((run_dir / "fig9.json").read_text())
        ledger_record = next(
            iter(Ledger(str(ledger_path(run_dir))).records())
        )
        assert ledger_record.payload == json_record

    def test_reruns_extend_the_same_chain(self, run_dir):
        run_experiments(["fig9"], fast=True, workers=1, base_seed=4,
                        duration=3.0, record_dir=str(run_dir))
        verification = verify_chain(str(ledger_path(run_dir)))
        assert verification.ok
        assert verification.length == 2

    def test_metrics_snapshot_is_ledger_appendable(self, run_dir):
        registry = MetricsRegistry()
        registry.inc("requests_admitted", 5)
        snapshot = registry.snapshot(now=12.5, sequence=1)
        Ledger(str(ledger_path(run_dir))).append("serve_metrics", snapshot)
        verification = verify_chain(str(ledger_path(run_dir)))
        assert verification.ok
        assert verification.length == 2


class TestCliLoop:
    def test_keygen_sign_verify_report(self, run_dir, key_file, capsys):
        # keygen (through the top-level CLI to pin the forwarding too)
        assert cli_main(["audit", "keygen", "--seed-hex", SEED_HEX,
                         "--key-file", str(key_file)]) == 0
        assert load_key_seed(str(key_file)) == bytes.fromhex(SEED_HEX)

        # sign
        assert audit_main(["sign", str(ledger_path(run_dir)),
                           "--key-file", str(key_file)]) == 0
        assert (run_dir / (ledger_path(run_dir).name + ".sig.json")).exists()

        # verify the run dir (chain + signature)
        assert audit_main(["verify", str(run_dir)]) == 0

        # report (signed)
        assert audit_main(["report", str(run_dir),
                           "--key-file", str(key_file)]) == 0
        report_json = run_dir / "report.json"
        report_html = run_dir / "report.html"
        assert report_json.exists() and report_html.exists()
        document = json.loads(report_json.read_text())
        assert verify_report(document)
        assert document["report"]["ok"] is True
        assert document["report"]["slo"]["failed"] == 0
        html = report_html.read_text()
        assert "PASS" in html and "<script" not in html

        # and the run dir still verifies with the report in place
        assert audit_main(["verify", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "verification PASSED" in out

    def test_unsigned_report(self, run_dir):
        assert audit_main(["report", str(run_dir), "--key-file", ""]) == 0
        document = json.loads((run_dir / "report.json").read_text())
        assert "report" not in document  # bare report, no envelope
        assert document["ok"] is True
        assert document["ledger"]["signature"]["present"] is False

    def test_keygen_rejects_bad_seed(self, tmp_path, capsys):
        bad = str(tmp_path / "key.json")
        assert audit_main(["keygen", "--seed-hex", "abcd",
                           "--key-file", bad]) == 2
        assert "error:" in capsys.readouterr().err

    def test_verify_missing_ledger_is_an_error(self, tmp_path, capsys):
        assert audit_main(["verify", str(tmp_path)]) == 2
        assert "no such ledger" in capsys.readouterr().err


class TestTamperDetection:
    @pytest.fixture
    def signed_run(self, run_dir, key_file):
        audit_main(["sign", str(ledger_path(run_dir)),
                    "--key-file", str(key_file)])
        audit_main(["report", str(run_dir), "--key-file", str(key_file)])
        return run_dir

    def test_ledger_byte_flip_fails_verify(self, signed_run):
        path = ledger_path(signed_run)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x01
        path.write_bytes(bytes(data))
        assert audit_main(["verify", str(signed_run)]) == 1

    def test_signature_byte_flip_fails_verify(self, signed_run):
        sig_path = signed_run / (ledger_path(signed_run).name + ".sig.json")
        document = json.loads(sig_path.read_text())
        tampered = bytearray(bytes.fromhex(document["signature"]))
        tampered[10] ^= 0x01
        document["signature"] = bytes(tampered).hex()
        sig_path.write_text(json.dumps(document, sort_keys=True))
        assert audit_main(["verify", str(sig_path)]) == 1

    def test_report_byte_flip_fails_verify(self, signed_run):
        report_path = signed_run / "report.json"
        document = json.loads(report_path.read_text())
        document["report"]["slo"]["failed"] = 0  # no-op edit...
        document["report"]["generated_at"] = "forged"  # ...and a real one
        report_path.write_text(json.dumps(document, sort_keys=True))
        assert audit_main(["verify", str(report_path)]) == 1

    def test_appending_after_signing_fails_verify(self, signed_run):
        Ledger(str(ledger_path(signed_run))).append(
            "experiment_run", {"experiment_id": "late"}
        )
        assert audit_main(["verify", str(signed_run)]) == 1
