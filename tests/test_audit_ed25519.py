"""Tests for repro.audit.ed25519: the RFC 8032 signature primitive.

The implementation is pinned directly to the RFC 8032 section 7.1 test
vectors — keygen, signing, and verification must reproduce them byte for
byte — then exercised for the properties the audit trail depends on:
any bit flip in message, signature, or public key must fail
verification, and malformed inputs must raise rather than "verify".
"""

import pytest

from repro.audit import ed25519
from repro.errors import SignatureError

#: RFC 8032 section 7.1 vectors: (seed, public key, message, signature).
RFC8032_VECTORS = [
    (  # TEST 1 (empty message)
        "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
        "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a",
        "",
        "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
        "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b",
    ),
    (  # TEST 2 (one byte)
        "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
        "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c",
        "72",
        "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
        "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00",
    ),
    (  # TEST 3 (two bytes)
        "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
        "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025",
        "af82",
        "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac"
        "18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a",
    ),
    (  # TEST SHA(abc) (64-byte message)
        "833fe62409237b9d62ec77587520911e9a759cec1d19755b7da901b96dca3d42",
        "ec172b93ad5e563bf4932c70e1245034c35467ef2efd4d64ebf819683467e2bf",
        "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
        "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f",
        "dc2a4459e7369633a52b1bf277839a00201009a3efbf3ecb69bea2186c26b589"
        "09351fc9ac90b3ecfdfbc7c66431e0303dca179c138ac17ad9bef1177331a704",
    ),
]


@pytest.mark.parametrize(
    "seed_hex, public_hex, message_hex, signature_hex", RFC8032_VECTORS
)
class TestRfc8032Vectors:
    def test_public_key_derivation(self, seed_hex, public_hex, message_hex,
                                   signature_hex):
        seed = bytes.fromhex(seed_hex)
        assert ed25519.public_key(seed).hex() == public_hex

    def test_signature(self, seed_hex, public_hex, message_hex,
                       signature_hex):
        seed = bytes.fromhex(seed_hex)
        message = bytes.fromhex(message_hex)
        assert ed25519.sign(seed, message).hex() == signature_hex

    def test_verification(self, seed_hex, public_hex, message_hex,
                          signature_hex):
        assert ed25519.verify(
            bytes.fromhex(public_hex),
            bytes.fromhex(message_hex),
            bytes.fromhex(signature_hex),
        )


class TestRoundTrip:
    def test_sign_verify_roundtrip(self):
        seed = bytes(range(32))
        message = b"rfprotect audit chain head"
        signature = ed25519.sign(seed, message)
        assert ed25519.verify(ed25519.public_key(seed), message, signature)

    def test_deterministic_signatures(self):
        # RFC 8032 signatures carry no nonce: same seed + message must
        # yield identical bytes (the audit trail depends on replayable
        # signing).
        seed = bytes(range(32))
        message = b"same message"
        assert ed25519.sign(seed, message) == ed25519.sign(seed, message)

    @pytest.mark.parametrize("flip_at", [0, 7, 31])
    def test_tampered_message_fails(self, flip_at):
        seed = bytes(range(32))
        message = bytearray(b"x" * 32)
        signature = ed25519.sign(seed, bytes(message))
        message[flip_at] ^= 0x01
        assert not ed25519.verify(
            ed25519.public_key(seed), bytes(message), signature
        )

    @pytest.mark.parametrize("flip_at", [0, 31, 32, 63])
    def test_tampered_signature_fails(self, flip_at):
        # Both halves of the signature (R point and s scalar) are load-
        # bearing; a flipped bit in either must not verify.
        seed = bytes(range(32))
        message = b"payload"
        signature = bytearray(ed25519.sign(seed, message))
        signature[flip_at] ^= 0x01
        assert not ed25519.verify(
            ed25519.public_key(seed), message, bytes(signature)
        )

    def test_wrong_public_key_fails(self):
        message = b"payload"
        signature = ed25519.sign(bytes(range(32)), message)
        other_public = ed25519.public_key(bytes(range(1, 33)))
        assert not ed25519.verify(other_public, message, signature)


class TestInputValidation:
    def test_bad_seed_size_raises(self):
        with pytest.raises(SignatureError):
            ed25519.public_key(b"short")
        with pytest.raises(SignatureError):
            ed25519.sign(b"\x00" * 31, b"message")

    def test_bad_signature_size_raises(self):
        public = ed25519.public_key(bytes(32))
        with pytest.raises(SignatureError):
            ed25519.verify(public, b"message", b"\x00" * 63)

    def test_bad_public_key_size_raises(self):
        signature = ed25519.sign(bytes(32), b"message")
        with pytest.raises(SignatureError):
            ed25519.verify(b"\x00" * 16, b"message", signature)
