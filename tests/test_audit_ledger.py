"""Tests for repro.audit.ledger: the hash-chained artifact log.

The tamper-evidence claim is checked the blunt way: write a real ledger,
flip one byte anywhere in it, and assert verification pinpoints a
failure. Chain continuity across separate ``Ledger`` instances, the
canonical serialization contract, and the signature layer (which must
also reject truncation, not just mutation) get their own coverage.
"""

import json

import pytest

from repro.audit import canonical_json, digest
from repro.audit.ledger import (
    GENESIS_HASH,
    Ledger,
    LedgerRecord,
    RECORD_KINDS,
    SCHEMA_VERSION,
    sign_ledger,
    signing_payload,
    verify_chain,
    verify_signature,
)
from repro.errors import LedgerError

SEED = bytes(range(32))


@pytest.fixture
def ledger_path(tmp_path):
    path = str(tmp_path / "ledger.jsonl")
    ledger = Ledger(path)
    ledger.append("experiment_run", {"experiment_id": "fig7", "seed": 0})
    ledger.append("serve_metrics", {"counters": {"admitted": 3}, "now": 1.5})
    ledger.append("benchmark_timing", {"name": "bench_chain", "p50_s": 0.01})
    return path


class TestChain:
    def test_verify_ok(self, ledger_path):
        verification = verify_chain(ledger_path)
        assert verification.ok
        assert verification.length == 3
        assert verification.first_bad_index is None

    def test_first_record_anchors_on_genesis(self, ledger_path):
        first = next(iter(Ledger(ledger_path).records()))
        assert first.prev_hash == GENESIS_HASH
        assert first.index == 0

    def test_links_are_prev_hashes(self, ledger_path):
        records = list(Ledger(ledger_path).records())
        for previous, current in zip(records, records[1:]):
            assert current.prev_hash == previous.record_hash

    def test_head_hash_tracks_tail(self, ledger_path):
        ledger = Ledger(ledger_path)
        assert ledger.head_hash == list(ledger.records())[-1].record_hash
        assert verify_chain(ledger_path).head_hash == ledger.head_hash

    def test_appends_reanchor_across_instances(self, ledger_path):
        # A fresh Ledger over an existing file must continue the chain,
        # not restart it at genesis.
        Ledger(ledger_path).append("experiment_run", {"experiment_id": "t1"})
        verification = verify_chain(ledger_path)
        assert verification.ok
        assert verification.length == 4

    def test_unknown_kind_rejected(self, ledger_path):
        with pytest.raises(LedgerError, match="unknown record kind"):
            Ledger(ledger_path).append("telemetry", {})
        assert verify_chain(ledger_path).ok

    def test_empty_ledger_head_is_genesis(self, tmp_path):
        ledger = Ledger(str(tmp_path / "fresh.jsonl"))
        assert len(ledger) == 0
        assert ledger.head_hash == GENESIS_HASH

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(LedgerError, match="no such ledger"):
            verify_chain(str(tmp_path / "absent.jsonl"))


class TestTamperEvidence:
    def test_every_single_byte_flip_is_detected(self, ledger_path):
        # The headline property, exhaustively: flipping the low bit of
        # ANY byte in the file must break verification. Quote characters
        # may yield a parse failure, content bytes a hash failure, hash
        # bytes a link/content mismatch — all must surface as not-ok.
        with open(ledger_path, "rb") as handle:
            original = handle.read()
        for offset in range(len(original)):
            tampered = bytearray(original)
            tampered[offset] ^= 0x01
            if tampered[offset] in (0x0A, 0x0D) or original[offset] == 0x0A:
                continue  # newline edits change framing, checked below
            with open(ledger_path, "wb") as handle:
                handle.write(bytes(tampered))
            verification = verify_chain(ledger_path)
            assert not verification.ok, f"byte {offset} flip went undetected"
            assert verification.first_bad_index is not None
        with open(ledger_path, "wb") as handle:
            handle.write(original)
        assert verify_chain(ledger_path).ok

    def test_deleting_a_middle_line_breaks_the_chain(self, ledger_path):
        with open(ledger_path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        del lines[1]
        with open(ledger_path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        verification = verify_chain(ledger_path)
        assert not verification.ok
        assert verification.first_bad_index == 1

    def test_reordering_records_breaks_the_chain(self, ledger_path):
        with open(ledger_path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        lines[0], lines[1] = lines[1], lines[0]
        with open(ledger_path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        assert not verify_chain(ledger_path).ok

    def test_forged_consistent_record_flagged_by_schema_guard(
            self, ledger_path):
        # A forger who recomputes hashes can only forge records that
        # still satisfy the schema/kind checks; an invented kind fails
        # even with self-consistent hashes.
        records = list(Ledger(ledger_path).records())
        body = records[0].body()
        body["kind"] = "forged_kind"
        forged = LedgerRecord(
            index=0, kind="forged_kind", payload=body["payload"],
            prev_hash=GENESIS_HASH, record_hash=digest(body),
        )
        lines = [canonical_json(forged.to_dict())]
        with open(ledger_path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        verification = verify_chain(ledger_path)
        assert not verification.ok
        assert "unknown kind" in verification.reason


class TestCanonicalForm:
    def test_lines_are_canonical_json(self, ledger_path):
        with open(ledger_path, "r", encoding="utf-8") as handle:
            for line in handle:
                parsed = json.loads(line)
                assert line.rstrip("\n") == canonical_json(parsed)
                assert parsed["schema"] == SCHEMA_VERSION
                assert parsed["kind"] in RECORD_KINDS

    def test_record_hash_is_body_digest(self, ledger_path):
        for record in Ledger(ledger_path).records():
            assert record.record_hash == record.computed_hash()
            assert record.computed_hash() == digest(record.body())

    def test_identical_appends_yield_identical_files(self, tmp_path):
        paths = [str(tmp_path / name) for name in ("a.jsonl", "b.jsonl")]
        for path in paths:
            ledger = Ledger(path)
            ledger.append("experiment_run", {"b": 2, "a": 1})
        contents = [open(p, "rb").read() for p in paths]  # noqa: SIM115
        assert contents[0] == contents[1]


class TestSignature:
    def test_sign_and_verify(self, ledger_path):
        document = sign_ledger(ledger_path, SEED)
        assert verify_signature(ledger_path, document)
        assert document["payload"] == signing_payload(
            verify_chain(ledger_path)
        )

    def test_signature_rejects_appended_records(self, ledger_path):
        # The signed payload pins length + head: growing the ledger
        # after signing must invalidate the old signature.
        document = sign_ledger(ledger_path, SEED)
        Ledger(ledger_path).append("experiment_run", {"experiment_id": "x"})
        assert not verify_signature(ledger_path, document)

    def test_signature_rejects_truncation(self, ledger_path):
        document = sign_ledger(ledger_path, SEED)
        with open(ledger_path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        with open(ledger_path, "w", encoding="utf-8") as handle:
            handle.writelines(lines[:-1])
        assert not verify_signature(ledger_path, document)

    def test_signature_rejects_tampered_document(self, ledger_path):
        document = sign_ledger(ledger_path, SEED)
        signature = bytearray(bytes.fromhex(document["signature"]))
        signature[5] ^= 0x01
        document["signature"] = bytes(signature).hex()
        assert not verify_signature(ledger_path, document)

    def test_refuses_to_sign_broken_chain(self, ledger_path):
        with open(ledger_path, "rb+") as handle:
            handle.seek(20)
            byte = handle.read(1)
            handle.seek(20)
            handle.write(bytes([byte[0] ^ 0x01]))
        with pytest.raises(LedgerError, match="refusing to sign"):
            sign_ledger(ledger_path, SEED)

    def test_malformed_document_fails_closed(self, ledger_path):
        assert not verify_signature(ledger_path, {})
        assert not verify_signature(
            ledger_path, {"payload": {}, "public_key": "zz", "signature": ""}
        )
