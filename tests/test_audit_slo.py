"""Tests for repro.audit.slo: the declarative privacy-SLO rules engine.

The built-in profile must pass at the paper's reference operating point
(that is the whole point of shipping it), record-sourced rules must
extract and aggregate payload values correctly (including the fan-out
over lists and the fail-closed behavior when a path matches nothing),
and malformed rules/profiles must be rejected at construction time, not
at evaluation time.
"""

import pytest

from repro.audit.ledger import Ledger
from repro.audit.slo import (
    DEFAULT_PROFILE,
    METRIC_PROVIDERS,
    SloProfile,
    SloRule,
    evaluate_profile,
    load_profile,
)
from repro.errors import AuditError


def record_rule(source: str, *, comparator: str = "<=",
                threshold: float = 1.0, aggregate: str = "last",
                rule_id: str = "r1") -> SloRule:
    return SloRule(rule_id=rule_id, description="", source=source,
                   comparator=comparator, threshold=threshold,
                   aggregate=aggregate)


@pytest.fixture
def run_records(tmp_path):
    ledger = Ledger(str(tmp_path / "ledger.jsonl"))
    for error in (0.3, 0.5, 0.1):
        ledger.append("experiment_run", {
            "experiment_id": "fig9",
            "result_summary": {"median_errors_m": [error, error + 0.2]},
        })
    ledger.append("serve_metrics", {"counters": {"rejected": 2}})
    return list(ledger.records())


class TestDefaultProfile:
    def test_passes_at_reference_operating_point(self):
        evaluation = evaluate_profile(DEFAULT_PROFILE, [])
        assert evaluation.ok
        assert {o.rule.rule_id for o in evaluation.outcomes} == {
            "mi-leak", "occupancy-confusion", "count-confusion",
            "breath-selection",
        }

    def test_metric_rules_are_deterministic(self):
        first = evaluate_profile(DEFAULT_PROFILE, [])
        second = evaluate_profile(DEFAULT_PROFILE, [])
        assert ([o.value for o in first.outcomes]
                == [o.value for o in second.outcomes])

    def test_roundtrips_through_dict(self):
        restored = SloProfile.from_dict(DEFAULT_PROFILE.to_dict())
        assert restored == DEFAULT_PROFILE

    def test_every_provider_has_a_finite_value(self):
        for name, provider in sorted(METRIC_PROVIDERS.items()):
            value = provider({})
            assert 0.0 <= value < 10.0, name


class TestRecordRules:
    def test_last_aggregate(self, run_records):
        rule = record_rule(
            "record:experiment_run:result_summary.median_errors_m",
            aggregate="last", threshold=0.4,
        )
        evaluation = evaluate_profile(SloProfile("p", (rule,)), run_records)
        outcome = evaluation.outcomes[0]
        # Lists fan out element-wise; "last" sees the final element of
        # the final matching record: 0.1 + 0.2.
        assert outcome.value == pytest.approx(0.3)
        assert outcome.passed

    def test_max_and_mean_aggregates(self, run_records):
        source = "record:experiment_run:result_summary.median_errors_m"
        values = {
            aggregate: evaluate_profile(
                SloProfile("p", (record_rule(source, aggregate=aggregate),)),
                run_records,
            ).outcomes[0].value
            for aggregate in ("max", "min", "mean")
        }
        assert values["max"] == pytest.approx(0.7)
        assert values["min"] == pytest.approx(0.1)
        assert values["mean"] == pytest.approx((0.3 + 0.5 + 0.5 + 0.7
                                                + 0.1 + 0.3) / 6)

    def test_kind_filter(self, run_records):
        rule = record_rule("record:serve_metrics:counters.rejected",
                           comparator="<=", threshold=5.0)
        outcome = evaluate_profile(
            SloProfile("p", (rule,)), run_records
        ).outcomes[0]
        assert outcome.value == pytest.approx(2.0)
        assert outcome.passed

    def test_no_matching_values_fails_closed(self, run_records):
        rule = record_rule("record:benchmark_timing:p50_s")
        outcome = evaluate_profile(
            SloProfile("p", (rule,)), run_records
        ).outcomes[0]
        assert not outcome.passed
        assert outcome.value is None
        assert "no ledger values" in outcome.detail

    def test_threshold_violation_fails(self, run_records):
        rule = record_rule(
            "record:experiment_run:result_summary.median_errors_m",
            aggregate="max", threshold=0.5,
        )
        evaluation = evaluate_profile(SloProfile("p", (rule,)), run_records)
        assert not evaluation.ok
        assert evaluation.to_dict()["failed"] == 1


class TestValidation:
    def test_unknown_comparator(self):
        with pytest.raises(AuditError, match="unknown comparator"):
            record_rule("record:experiment_run:x", comparator="==")

    def test_unknown_aggregate(self):
        with pytest.raises(AuditError, match="unknown aggregate"):
            record_rule("record:experiment_run:x", aggregate="median")

    def test_unknown_metric(self):
        with pytest.raises(AuditError, match="unknown metric"):
            record_rule("metric:nonexistent_metric")

    def test_unknown_scheme(self):
        with pytest.raises(AuditError, match="source must start"):
            record_rule("ledger:experiment_run:x")

    def test_bad_record_source_shape(self):
        with pytest.raises(AuditError, match="record source"):
            record_rule("record:unknown_kind:x")
        with pytest.raises(AuditError, match="record source"):
            record_rule("record:experiment_run")

    def test_duplicate_rule_ids(self):
        rule = record_rule("record:experiment_run:x")
        with pytest.raises(AuditError, match="repeats rule id"):
            SloProfile("p", (rule, rule))


class TestProfileFiles:
    def test_load_roundtrip(self, tmp_path):
        from repro.audit import canonical_json

        path = tmp_path / "profile.json"
        path.write_text(canonical_json(DEFAULT_PROFILE.to_dict()) + "\n",
                        encoding="utf-8")
        assert load_profile(str(path)) == DEFAULT_PROFILE

    def test_load_rejects_bad_schema(self, tmp_path):
        path = tmp_path / "profile.json"
        path.write_text('{"schema": 99, "name": "x", "rules": []}',
                        encoding="utf-8")
        with pytest.raises(AuditError, match="unsupported profile schema"):
            load_profile(str(path))

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(AuditError, match="cannot load"):
            load_profile(str(tmp_path / "absent.json"))
