"""Tests for the typed ``RF_PROTECT_*`` environment registry (`repro.config`).

Pins three properties: every serve knob parses/validates/defaults exactly
as declared, the registry and its accessor table stay complete mirrors of
each other (a knob added without a typed accessor — or vice versa — fails
here), and ``ServiceConfig.from_env`` actually reads the registry.
"""

from __future__ import annotations

import pytest

from repro.config import (
    ENV_ACCESSORS,
    ENV_REGISTRY,
    get_serve_batch_window_ms,
    get_serve_deadline_s,
    get_serve_max_batch,
    get_serve_queue_depth,
    get_serve_workers,
)
from repro.errors import ConfigurationError
from repro.serve.service import ServiceConfig

SERVE_VARS = {
    "RF_PROTECT_SERVE_BATCH_WINDOW_MS",
    "RF_PROTECT_SERVE_MAX_BATCH",
    "RF_PROTECT_SERVE_QUEUE_DEPTH",
    "RF_PROTECT_SERVE_DEADLINE_S",
    "RF_PROTECT_SERVE_WORKERS",
}


class TestRegistryCompleteness:
    def test_serve_knobs_declared(self):
        assert SERVE_VARS <= set(ENV_REGISTRY)

    def test_every_declared_var_has_an_accessor(self):
        assert sorted(ENV_ACCESSORS) == sorted(ENV_REGISTRY)

    def test_accessor_empty_env_returns_declared_default(self):
        for name, accessor in ENV_ACCESSORS.items():
            assert accessor({}) == ENV_REGISTRY[name].default

    def test_all_vars_namespaced_and_documented(self):
        for name, var in ENV_REGISTRY.items():
            assert name == var.name
            assert name.startswith("RF_PROTECT_")
            assert var.description


class TestServeKnobDefaults:
    def test_defaults(self):
        assert get_serve_batch_window_ms({}) == 2.0
        assert get_serve_max_batch({}) == 32
        assert get_serve_queue_depth({}) == 256
        assert get_serve_deadline_s({}) == 30.0
        assert get_serve_workers({}) == 2


class TestServeKnobParsing:
    def test_int_knobs_parse_and_strip(self):
        assert get_serve_max_batch(
            {"RF_PROTECT_SERVE_MAX_BATCH": " 8 "}) == 8
        assert get_serve_queue_depth(
            {"RF_PROTECT_SERVE_QUEUE_DEPTH": "17"}) == 17
        assert get_serve_workers({"RF_PROTECT_SERVE_WORKERS": "4"}) == 4

    def test_float_knobs_parse(self):
        assert get_serve_batch_window_ms(
            {"RF_PROTECT_SERVE_BATCH_WINDOW_MS": "0.5"}) == 0.5
        assert get_serve_deadline_s(
            {"RF_PROTECT_SERVE_DEADLINE_S": "1.25"}) == 1.25

    def test_window_zero_allowed(self):
        assert get_serve_batch_window_ms(
            {"RF_PROTECT_SERVE_BATCH_WINDOW_MS": "0"}) == 0.0

    @pytest.mark.parametrize("name, accessor, raw", [
        ("RF_PROTECT_SERVE_MAX_BATCH", get_serve_max_batch, "0"),
        ("RF_PROTECT_SERVE_MAX_BATCH", get_serve_max_batch, "-3"),
        ("RF_PROTECT_SERVE_MAX_BATCH", get_serve_max_batch, "four"),
        ("RF_PROTECT_SERVE_QUEUE_DEPTH", get_serve_queue_depth, "0"),
        ("RF_PROTECT_SERVE_WORKERS", get_serve_workers, "0"),
        ("RF_PROTECT_SERVE_WORKERS", get_serve_workers, "1.5"),
        ("RF_PROTECT_SERVE_BATCH_WINDOW_MS", get_serve_batch_window_ms, "-1"),
        ("RF_PROTECT_SERVE_BATCH_WINDOW_MS", get_serve_batch_window_ms, "nan"),
        ("RF_PROTECT_SERVE_BATCH_WINDOW_MS", get_serve_batch_window_ms, "inf"),
        ("RF_PROTECT_SERVE_BATCH_WINDOW_MS", get_serve_batch_window_ms, "soon"),
        ("RF_PROTECT_SERVE_DEADLINE_S", get_serve_deadline_s, "0"),
        ("RF_PROTECT_SERVE_DEADLINE_S", get_serve_deadline_s, "-2"),
    ])
    def test_invalid_values_raise_configuration_error(self, name, accessor,
                                                      raw):
        with pytest.raises(ConfigurationError, match=name):
            accessor({name: raw})


class TestServiceConfigFromEnv:
    def test_reads_registry_knobs(self, monkeypatch):
        monkeypatch.setenv("RF_PROTECT_SERVE_MAX_BATCH", "8")
        monkeypatch.setenv("RF_PROTECT_SERVE_BATCH_WINDOW_MS", "7.5")
        monkeypatch.setenv("RF_PROTECT_SERVE_QUEUE_DEPTH", "11")
        monkeypatch.setenv("RF_PROTECT_SERVE_DEADLINE_S", "3.0")
        monkeypatch.setenv("RF_PROTECT_SERVE_WORKERS", "3")
        config = ServiceConfig.from_env()
        assert config.max_batch_size == 8
        assert config.batch_window_ms == 7.5
        assert config.queue_depth == 11
        assert config.default_deadline_s == 3.0
        assert config.workers == 3
        assert config.batch_window_s == pytest.approx(0.0075)

    def test_invalid_direct_construction_rejected(self):
        with pytest.raises(ConfigurationError, match="max_batch_size"):
            ServiceConfig(max_batch_size=0)
        with pytest.raises(ConfigurationError, match="batch_window_ms"):
            ServiceConfig(batch_window_ms=-1.0)
        with pytest.raises(ConfigurationError, match="queue_depth"):
            ServiceConfig(queue_depth=0)
        with pytest.raises(ConfigurationError, match="default_deadline_s"):
            ServiceConfig(default_deadline_s=0.0)
        with pytest.raises(ConfigurationError, match="workers"):
            ServiceConfig(workers=0)
