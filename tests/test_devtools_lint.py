"""Tests for the rflint static-analysis suite (``repro.devtools``).

Each RFP rule is pinned three ways: it fires on its bad fixture, stays
quiet on its good fixture, and an inline ``# rflint: disable=`` comment
silences it. On top of that, the repo itself must lint clean — the same
gate CI runs.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.config import ENV_REGISTRY, get_synth_backend
from repro.devtools.engine import (
    PARSE_ERROR_ID,
    LintConfig,
    all_rules,
    lint_paths,
    lint_source,
)
from repro.devtools.lint import main as lint_main
from repro.errors import ConfigurationError

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "rflint"

#: Display path each rule's fixtures are linted under, chosen to satisfy
#: the rule's path scope (RFP004 only runs under radar/signal, RFP007
#: only under tests).
RULE_DISPLAY_PATHS = {
    "RFP001": "src/repro/module.py",
    "RFP002": "src/repro/module.py",
    "RFP003": "src/repro/module.py",
    "RFP004": "src/repro/radar/module.py",
    "RFP005": "src/repro/module.py",
    "RFP006": "src/repro/module.py",
    "RFP007": "tests/test_module.py",
    "RFP008": "src/repro/serve/module.py",
    "RFP009": "src/repro/radar/module.py",
}

RULE_IDS = sorted(RULE_DISPLAY_PATHS)


def lint_fixture(name: str, display_path: str):
    text = (FIXTURES / name).read_text(encoding="utf-8")
    return lint_source(text, display_path)


class TestRegistry:
    def test_all_nine_rules_registered(self):
        assert sorted(all_rules()) == RULE_IDS

    def test_rules_have_docs_and_titles(self):
        for rule_cls in all_rules().values():
            assert rule_cls.title
            assert rule_cls.__doc__


@pytest.mark.parametrize("rule_id", RULE_IDS)
class TestEachRule:
    def test_fires_on_bad_fixture(self, rule_id):
        findings = lint_fixture(
            f"{rule_id.lower()}_bad.py", RULE_DISPLAY_PATHS[rule_id]
        )
        assert findings, f"{rule_id} did not fire on its bad fixture"
        assert {f.rule_id for f in findings} == {rule_id}

    def test_quiet_on_good_fixture(self, rule_id):
        findings = lint_fixture(
            f"{rule_id.lower()}_good.py", RULE_DISPLAY_PATHS[rule_id]
        )
        assert findings == []

    def test_inline_suppression_silences_rule(self, rule_id):
        display_path = RULE_DISPLAY_PATHS[rule_id]
        text = (FIXTURES / f"{rule_id.lower()}_bad.py").read_text(
            encoding="utf-8"
        )
        findings = lint_source(text, display_path)
        lines = text.splitlines()
        for line_number in sorted({f.line for f in findings}, reverse=True):
            lines[line_number - 1] += f"  # rflint: disable={rule_id}"
        suppressed = lint_source("\n".join(lines) + "\n", display_path)
        assert [f for f in suppressed if f.rule_id == rule_id] == []


class TestSuppression:
    def test_static_suppressed_fixture_is_clean(self):
        assert lint_fixture("rfp_suppressed.py", "src/repro/module.py") == []

    def test_disable_all_keyword(self):
        text = "import numpy as np\nnp.random.seed(0)  # rflint: disable=all\n"
        assert lint_source(text, "src/repro/module.py") == []

    def test_suppression_inside_string_is_inert(self):
        text = (
            "import numpy as np\n"
            'MESSAGE = "# rflint: disable=RFP001"\n'
            "np.random.seed(0)\n"
        )
        findings = lint_source(text, "src/repro/module.py")
        assert [f.rule_id for f in findings] == ["RFP001"]


class TestScoping:
    def test_rfp004_scoped_to_radar_and_signal(self):
        text = (FIXTURES / "rfp004_bad.py").read_text(encoding="utf-8")
        assert lint_source(text, "src/repro/radar/module.py")
        assert lint_source(text, "src/repro/signal/module.py")
        assert lint_source(text, "src/repro/gan/module.py") == []

    def test_rfp003_exempts_the_registry_module(self):
        text = (
            "import os\n"
            'BACKEND = os.environ.get("RF_PROTECT_SYNTH", "vectorized")\n'
        )
        assert lint_source(text, "src/repro/radar/module.py")
        assert lint_source(text, "src/repro/config.py") == []

    def test_rfp007_scoped_to_tests(self):
        text = (FIXTURES / "rfp007_bad.py").read_text(encoding="utf-8")
        assert lint_source(text, "tests/test_module.py")
        assert lint_source(text, "src/repro/module.py") == []

    def test_rfp008_scoped_to_serve(self):
        text = (FIXTURES / "rfp008_bad.py").read_text(encoding="utf-8")
        assert lint_source(text, "src/repro/serve/module.py")
        assert lint_source(text, "src/repro/radar/module.py") == []

    def test_rfp009_exempts_the_stage_registry_module(self):
        text = (FIXTURES / "rfp009_bad.py").read_text(encoding="utf-8")
        assert lint_source(text, "src/repro/radar/module.py")
        assert lint_source(text, "src/repro/serve/module.py")
        assert lint_source(text, "src/repro/radar/stages.py") == []
        assert lint_source(text, "src/repro/gan/module.py") == []

    def test_fixture_corpus_excluded_from_directory_walk(self):
        result = lint_paths([str(REPO_ROOT / "tests")], LintConfig())
        fixture_paths = [
            f.path for f in result.findings if "fixtures/rflint" in f.path
        ]
        assert fixture_paths == []

    def test_explicitly_named_file_bypasses_excludes(self):
        result = lint_paths([str(FIXTURES / "rfp006_bad.py")], LintConfig())
        assert result.findings


class TestEngine:
    def test_parse_error_reported_not_raised(self):
        findings = lint_source("def broken(:\n", "src/repro/module.py")
        assert [f.rule_id for f in findings] == [PARSE_ERROR_ID]

    def test_findings_are_sorted_and_serializable(self):
        findings = lint_fixture("rfp006_bad.py", "src/repro/module.py")
        assert findings == sorted(findings)
        for finding in findings:
            record = finding.to_dict()
            assert record["rule"] == "RFP006"
            assert record["line"] >= 1

    def test_unknown_select_rejected(self):
        with pytest.raises(ValueError, match="RFP999"):
            lint_paths(
                [str(FIXTURES / "rfp006_bad.py")],
                LintConfig(select=("RFP999",)),
            )

    def test_select_limits_rules(self):
        result = lint_paths(
            [str(FIXTURES / "rfp006_bad.py")], LintConfig(select=("RFP001",))
        )
        assert result.findings == ()


class TestCli:
    def test_repo_lints_clean(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert lint_main(["src", "tests"]) == 0

    def test_rfprotect_lint_subcommand(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert cli_main(["lint", "src", "tests"]) == 0

    def test_json_format_and_exit_code(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        exit_code = lint_main(
            ["--format", "json", "tests/fixtures/rflint/rfp006_bad.py"]
        )
        assert exit_code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["files_checked"] == 1
        assert {f["rule"] for f in payload["findings"]} == {"RFP006"}

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULE_IDS:
            assert rule_id in out

    def test_missing_path_is_usage_error(self, capsys):
        assert lint_main(["no/such/dir"]) == 2
        assert "error" in capsys.readouterr().err

    def test_python_m_entry_point(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")]
        ).rstrip(os.pathsep)
        completed = subprocess.run(
            [sys.executable, "-m", "repro.devtools.lint", "--list-rules"],
            cwd=REPO_ROOT, env=env, capture_output=True, text=True,
            timeout=120,
        )
        assert completed.returncode == 0
        assert "RFP001" in completed.stdout


class TestEnvRegistry:
    def test_synth_backend_registered(self):
        assert "RF_PROTECT_SYNTH" in ENV_REGISTRY

    def test_default_and_explicit(self):
        assert get_synth_backend({}) == "vectorized"
        assert get_synth_backend({"RF_PROTECT_SYNTH": " Naive "}) == "naive"

    def test_invalid_value_rejected(self):
        with pytest.raises(ConfigurationError, match="RF_PROTECT_SYNTH"):
            get_synth_backend({"RF_PROTECT_SYNTH": "turbo"})


class TestTypingGate:
    def test_mypy_strict_packages(self):
        pytest.importorskip("mypy", reason="mypy not installed")
        completed = subprocess.run(
            [sys.executable, "-m", "mypy"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=600,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr
