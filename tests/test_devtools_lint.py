"""Tests for the rflint static-analysis suite (``repro.devtools``).

Each RFP rule is pinned three ways: it fires on its bad fixture, stays
quiet on its good fixture, and an inline ``# rflint: disable=`` comment
silences it. The project-wide machinery gets its own coverage — cross-
module resolution, logical-line suppression spans, the incremental
cache, ``--fix`` idempotence, baselines, and SARIF output. On top of
that, the repo itself must lint clean — the same gate CI runs.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.config import ENV_REGISTRY, get_synth_backend
from repro.devtools.baseline import Baseline, fingerprint
from repro.devtools.cache import LintCache
from repro.devtools.engine import (
    PARSE_ERROR_ID,
    LintConfig,
    all_rules,
    lint_paths,
    lint_source,
    lint_sources,
)
from repro.devtools.lint import main as lint_main
from repro.devtools.sarif import to_sarif
from repro.errors import ConfigurationError

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "rflint"

#: Display path each rule's fixtures are linted under, chosen to satisfy
#: the rule's path scope (RFP004 only runs under radar/signal, RFP007
#: only under tests, RFP015 only under the audit package, RFP016 only
#: under experiments/serve, the project rules RFP010-RFP014 under their
#: respective subsystem trees).
RULE_DISPLAY_PATHS = {
    "RFP001": "src/repro/module.py",
    "RFP002": "src/repro/module.py",
    "RFP003": "src/repro/module.py",
    "RFP004": "src/repro/radar/module.py",
    "RFP005": "src/repro/module.py",
    "RFP006": "src/repro/module.py",
    "RFP007": "tests/test_module.py",
    "RFP008": "src/repro/serve/module.py",
    "RFP009": "src/repro/radar/module.py",
    "RFP010": "src/repro/serve/module.py",
    "RFP011": "src/repro/radar/module.py",
    "RFP012": "src/repro/radar/module.py",
    "RFP013": "src/repro/radar/module.py",
    "RFP014": "src/repro/serve/module.py",
    "RFP015": "src/repro/audit/module.py",
    "RFP016": "src/repro/experiments/module.py",
}

RULE_IDS = sorted(RULE_DISPLAY_PATHS)


def lint_fixture(name: str, display_path: str):
    text = (FIXTURES / name).read_text(encoding="utf-8")
    return lint_source(text, display_path)


class TestRegistry:
    def test_all_sixteen_rules_registered(self):
        assert sorted(all_rules()) == RULE_IDS

    def test_rules_have_docs_and_titles(self):
        for rule_cls in all_rules().values():
            assert rule_cls.title
            assert rule_cls.__doc__


@pytest.mark.parametrize("rule_id", RULE_IDS)
class TestEachRule:
    def test_fires_on_bad_fixture(self, rule_id):
        findings = lint_fixture(
            f"{rule_id.lower()}_bad.py", RULE_DISPLAY_PATHS[rule_id]
        )
        assert findings, f"{rule_id} did not fire on its bad fixture"
        assert {f.rule_id for f in findings} == {rule_id}

    def test_quiet_on_good_fixture(self, rule_id):
        findings = lint_fixture(
            f"{rule_id.lower()}_good.py", RULE_DISPLAY_PATHS[rule_id]
        )
        assert findings == []

    def test_inline_suppression_silences_rule(self, rule_id):
        display_path = RULE_DISPLAY_PATHS[rule_id]
        text = (FIXTURES / f"{rule_id.lower()}_bad.py").read_text(
            encoding="utf-8"
        )
        findings = lint_source(text, display_path)
        lines = text.splitlines()
        for line_number in sorted({f.line for f in findings}, reverse=True):
            lines[line_number - 1] += f"  # rflint: disable={rule_id}"
        suppressed = lint_source("\n".join(lines) + "\n", display_path)
        assert [f for f in suppressed if f.rule_id == rule_id] == []


class TestSuppression:
    def test_static_suppressed_fixture_is_clean(self):
        assert lint_fixture("rfp_suppressed.py", "src/repro/module.py") == []

    def test_disable_all_keyword(self):
        text = "import numpy as np\nnp.random.seed(0)  # rflint: disable=all\n"
        assert lint_source(text, "src/repro/module.py") == []

    def test_suppression_inside_string_is_inert(self):
        text = (
            "import numpy as np\n"
            'MESSAGE = "# rflint: disable=RFP001"\n'
            "np.random.seed(0)\n"
        )
        findings = lint_source(text, "src/repro/module.py")
        assert [f.rule_id for f in findings] == ["RFP001"]

    def test_trailing_disable_covers_multiline_statement(self):
        # The finding anchors at line 2; the comment trails line 4. The
        # statement is one logical line, so its whole span is covered.
        text = (
            "import numpy as np\n"
            "np.random.seed(\n"
            "    0\n"
            ")  # rflint: disable=RFP001\n"
        )
        assert lint_source(text, "src/repro/module.py") == []

    def test_standalone_comment_covers_only_its_own_line(self):
        text = (
            "import numpy as np\n"
            "# rflint: disable=RFP001\n"
            "np.random.seed(0)\n"
        )
        findings = lint_source(text, "src/repro/module.py")
        assert [f.rule_id for f in findings] == ["RFP001"]

    def test_disable_does_not_leak_to_next_statement(self):
        text = (
            "import numpy as np\n"
            "np.random.seed(0)  # rflint: disable=RFP001\n"
            "np.random.seed(1)\n"
        )
        findings = lint_source(text, "src/repro/module.py")
        assert [f.line for f in findings] == [3]


class TestScoping:
    def test_rfp004_scoped_to_numeric_packages(self):
        text = (FIXTURES / "rfp004_bad.py").read_text(encoding="utf-8")
        assert lint_source(text, "src/repro/radar/module.py")
        assert lint_source(text, "src/repro/signal/module.py")
        assert lint_source(text, "src/repro/nn/module.py")
        assert lint_source(text, "src/repro/gan/module.py")
        assert lint_source(text, "src/repro/trajectories/module.py") == []

    def test_rfp003_exempts_the_registry_module(self):
        text = (
            "import os\n"
            'BACKEND = os.environ.get("RF_PROTECT_SYNTH", "vectorized")\n'
        )
        assert lint_source(text, "src/repro/radar/module.py")
        assert lint_source(text, "src/repro/config.py") == []

    def test_rfp007_scoped_to_tests(self):
        text = (FIXTURES / "rfp007_bad.py").read_text(encoding="utf-8")
        assert lint_source(text, "tests/test_module.py")
        assert lint_source(text, "src/repro/module.py") == []

    def test_rfp008_scoped_to_serve(self):
        text = (FIXTURES / "rfp008_bad.py").read_text(encoding="utf-8")
        assert lint_source(text, "src/repro/serve/module.py")
        assert lint_source(text, "src/repro/radar/module.py") == []

    def test_rfp009_exempts_the_stage_registry_module(self):
        text = (FIXTURES / "rfp009_bad.py").read_text(encoding="utf-8")
        assert lint_source(text, "src/repro/radar/module.py")
        assert lint_source(text, "src/repro/serve/module.py")
        assert lint_source(text, "src/repro/radar/stages.py") == []
        assert lint_source(text, "src/repro/gan/module.py") == []

    def test_rfp014_scoped_to_serve(self):
        text = (FIXTURES / "rfp014_bad.py").read_text(encoding="utf-8")
        assert lint_source(text, "src/repro/serve/module.py")
        assert lint_source(text, "src/repro/gan/module.py") == []

    def test_fixture_corpus_excluded_from_directory_walk(self):
        result = lint_paths([str(REPO_ROOT / "tests")], LintConfig())
        fixture_paths = [
            f.path for f in result.findings if "fixtures/rflint" in f.path
        ]
        assert fixture_paths == []

    def test_explicitly_named_file_bypasses_excludes(self):
        result = lint_paths([str(FIXTURES / "rfp006_bad.py")], LintConfig())
        assert result.findings


class TestProjectAnalysis:
    """Cross-module behavior of the project pass (RFP010/012/014)."""

    def test_rfp014_follows_chains_across_modules(self):
        helper = (
            "import time\n"
            "\n"
            "\n"
            "def settle() -> None:\n"
            "    time.sleep(0.1)\n"
        )
        service = (
            "from repro.serve.helper import settle\n"
            "\n"
            "\n"
            "async def handle() -> None:\n"
            "    settle()\n"
        )
        findings = lint_sources({
            "src/repro/serve/helper.py": helper,
            "src/repro/serve/service_probe.py": service,
        })
        assert [f.rule_id for f in findings] == ["RFP014"]
        finding = findings[0]
        assert finding.path == "src/repro/serve/service_probe.py"
        assert "repro.serve.helper.settle" in finding.message
        assert "time.sleep" in finding.message

    def test_rfp010_typed_receiver_across_modules(self):
        session_mod = (
            "import asyncio\n"
            "\n"
            "\n"
            "class Session:\n"
            "    def __init__(self) -> None:\n"
            "        self.lock = asyncio.Lock()\n"
            "        self.frames = 0\n"
            "\n"
            "    async def ingest(self) -> None:\n"
            "        async with self.lock:\n"
            "            self.frames += 1\n"
        )
        probe_mod = (
            "from repro.serve.sessionmod import Session\n"
            "\n"
            "\n"
            "def snoop(session: Session) -> int:\n"
            "    return session.frames\n"
        )
        findings = lint_sources({
            "src/repro/serve/sessionmod.py": session_mod,
            "src/repro/serve/probe.py": probe_mod,
        })
        assert [f.rule_id for f in findings] == ["RFP010"]
        assert findings[0].path == "src/repro/serve/probe.py"

    def test_rfp012_checkpoint_subscripts_checked_project_wide(self):
        schema_mod = (FIXTURES / "rfp012_good.py").read_text(encoding="utf-8")
        reader_mod = (
            "def history_depth(counter) -> int:\n"
            '    return len(counter.checkpoint["history"])\n'
            "\n"
            "\n"
            "def current(counter) -> int:\n"
            '    return counter.checkpoint["count"]\n'
        )
        findings = lint_sources({
            "src/repro/radar/countermod.py": schema_mod,
            "src/repro/serve/reader.py": reader_mod,
        })
        assert [f.rule_id for f in findings] == ["RFP012"]
        assert findings[0].path == "src/repro/serve/reader.py"
        assert "'history'" in findings[0].message


class TestIncrementalCache:
    def _project(self, tmp_path: Path) -> Path:
        src = tmp_path / "proj"
        src.mkdir()
        bad = (FIXTURES / "rfp006_bad.py").read_text(encoding="utf-8")
        (src / "alpha.py").write_text(bad, encoding="utf-8")
        (src / "beta.py").write_text("VALUE = 1\n", encoding="utf-8")
        return src

    def test_warm_run_reanalyzes_only_changed_files(self, tmp_path):
        src = self._project(tmp_path)
        config = LintConfig()
        cache_dir = tmp_path / "cache"

        cold = lint_paths([str(src)], config,
                          cache=LintCache.open(cache_dir, config))
        assert cold.files_checked == 2
        assert cold.files_reanalyzed == 2
        assert {f.rule_id for f in cold.findings} == {"RFP006"}

        warm = lint_paths([str(src)], config,
                          cache=LintCache.open(cache_dir, config))
        assert warm.files_checked == 2
        assert warm.files_reanalyzed == 0
        assert warm.findings == cold.findings

        (src / "beta.py").write_text("VALUE = 2\n", encoding="utf-8")
        touched = lint_paths([str(src)], config,
                             cache=LintCache.open(cache_dir, config))
        assert touched.files_reanalyzed == 1
        assert touched.findings == cold.findings

    def test_config_change_invalidates_cache(self, tmp_path):
        src = self._project(tmp_path)
        cache_dir = tmp_path / "cache"
        config = LintConfig()
        lint_paths([str(src)], config,
                   cache=LintCache.open(cache_dir, config))

        narrowed = LintConfig(select=("RFP001",))
        rerun = lint_paths([str(src)], narrowed,
                           cache=LintCache.open(cache_dir, narrowed))
        assert rerun.files_reanalyzed == 2
        assert rerun.findings == ()

    def test_project_findings_survive_cached_facts(self, tmp_path):
        # Cross-module findings come from the (always re-run) project
        # pass over cached *facts* — a fully warm run must still report
        # them without re-analyzing any file.
        serve = tmp_path / "src" / "repro" / "serve"
        serve.mkdir(parents=True)
        (serve / "helper.py").write_text(
            "import time\n\n\ndef settle() -> None:\n    time.sleep(0.1)\n",
            encoding="utf-8",
        )
        (serve / "service_probe.py").write_text(
            "from repro.serve.helper import settle\n\n\n"
            "async def handle() -> None:\n    settle()\n",
            encoding="utf-8",
        )
        config = LintConfig()
        cache_dir = tmp_path / "cache"
        cold = lint_paths([str(serve)], config,
                          cache=LintCache.open(cache_dir, config))
        warm = lint_paths([str(serve)], config,
                          cache=LintCache.open(cache_dir, config))
        assert warm.files_reanalyzed == 0
        assert [f.rule_id for f in cold.findings] == ["RFP014"]
        assert warm.findings == cold.findings


class TestAutoFix:
    def test_fix_rfp004_inserts_dtype_and_is_idempotent(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        target = tmp_path / "repro" / "radar" / "module.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "import numpy as np\n\nbuffer = np.zeros(4)\n", encoding="utf-8"
        )
        assert lint_main([str(target)]) == 1
        assert lint_main(["--fix", str(target)]) == 0
        fixed = target.read_text(encoding="utf-8")
        assert "np.zeros(4, dtype=np.float64)" in fixed
        assert lint_main(["--fix", str(target)]) == 0
        assert target.read_text(encoding="utf-8") == fixed

    def test_fix_rfp005_rewrites_mutable_default(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        target = tmp_path / "module.py"
        target.write_text(
            "def collect(items=[]):\n"
            "    items.append(1)\n"
            "    return items\n",
            encoding="utf-8",
        )
        assert lint_main(["--fix", str(target)]) == 0
        fixed = target.read_text(encoding="utf-8")
        assert "items=None" in fixed
        assert "if items is None:" in fixed
        assert lint_main([str(target)]) == 0


class TestBaseline:
    def test_fingerprints_survive_line_shifts(self):
        text = (FIXTURES / "rfp006_bad.py").read_text(encoding="utf-8")
        baseline = Baseline.from_findings(
            lint_source(text, "src/repro/module.py")
        )
        shifted = "# leading comment\n" + text
        fresh = baseline.filter(lint_source(shifted, "src/repro/module.py"))
        assert fresh == []

    def test_filter_absorbs_up_to_recorded_count(self):
        findings = lint_fixture("rfp006_bad.py", "src/repro/module.py")
        partial = Baseline.from_findings(findings[:1])
        remaining = partial.filter(findings)
        assert len(remaining) == len(findings) - 1

    def test_grows_over_is_the_ratchet(self):
        small = lint_fixture("rfp006_bad.py", "src/repro/module.py")
        extra = lint_fixture("rfp001_bad.py", "src/repro/module.py")
        base = Baseline.from_findings(small)
        grown = Baseline.from_findings([*small, *extra])
        assert grown.grows_over(base) == sorted(
            {fingerprint(f) for f in extra}
        )
        assert base.grows_over(grown) == []
        assert base.grows_over(base) == []

    def test_cli_update_then_filter_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        target = tmp_path / "module.py"
        target.write_text(
            (FIXTURES / "rfp006_bad.py").read_text(encoding="utf-8"),
            encoding="utf-8",
        )
        baseline_file = tmp_path / "baseline.json"
        assert lint_main(
            ["--update-baseline", str(baseline_file), str(target)]
        ) == 0
        payload = json.loads(baseline_file.read_text(encoding="utf-8"))
        assert payload["total"] >= 1
        assert lint_main(
            ["--baseline", str(baseline_file), str(target)]
        ) == 0
        assert lint_main([str(target)]) == 1

    def test_baseline_flags_mutually_exclusive(self):
        exit_code = lint_main(
            ["--baseline", "a.json", "--update-baseline", "b.json", "src"]
        )
        assert exit_code == 2

    def test_repo_ships_an_empty_baseline(self):
        payload = json.loads(
            (REPO_ROOT / ".rflint-baseline.json").read_text(encoding="utf-8")
        )
        assert payload["total"] == 0
        assert payload["findings"] == {}


class TestSarif:
    def test_sarif_document_shape(self):
        findings = lint_fixture("rfp006_bad.py", "src/repro/module.py")
        document = to_sarif(findings)
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        descriptors = run["tool"]["driver"]["rules"]
        assert [rule["id"] for rule in descriptors] == RULE_IDS
        result = run["results"][0]
        assert result["ruleId"] == "RFP006"
        assert descriptors[result["ruleIndex"]]["id"] == "RFP006"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/module.py"
        assert location["region"]["startLine"] == findings[0].line

    def test_cli_sarif_output_parses(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        exit_code = lint_main(
            ["--format", "sarif", "tests/fixtures/rflint/rfp006_bad.py"]
        )
        assert exit_code == 1
        payload = json.loads(capsys.readouterr().out)
        results = payload["runs"][0]["results"]
        assert {r["ruleId"] for r in results} == {"RFP006"}


class TestEngine:
    def test_parse_error_reported_not_raised(self):
        findings = lint_source("def broken(:\n", "src/repro/module.py")
        assert [f.rule_id for f in findings] == [PARSE_ERROR_ID]

    def test_findings_are_sorted_and_serializable(self):
        findings = lint_fixture("rfp006_bad.py", "src/repro/module.py")
        assert findings == sorted(findings)
        for finding in findings:
            record = finding.to_dict()
            assert record["rule"] == "RFP006"
            assert record["line"] >= 1

    def test_unknown_select_rejected(self):
        with pytest.raises(ValueError, match="RFP999"):
            lint_paths(
                [str(FIXTURES / "rfp006_bad.py")],
                LintConfig(select=("RFP999",)),
            )

    def test_select_limits_rules(self):
        result = lint_paths(
            [str(FIXTURES / "rfp006_bad.py")], LintConfig(select=("RFP001",))
        )
        assert result.findings == ()

    def test_parallel_jobs_match_serial(self):
        paths = [
            str(FIXTURES / "rfp001_bad.py"),
            str(FIXTURES / "rfp006_bad.py"),
        ]
        serial = lint_paths(paths, LintConfig())
        parallel = lint_paths(paths, LintConfig(), jobs=2)
        assert parallel.findings == serial.findings
        assert parallel.files_checked == serial.files_checked


class TestCli:
    def test_repo_lints_clean(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert lint_main(["src", "tests"]) == 0

    def test_rfprotect_lint_subcommand(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert cli_main(["lint", "src", "tests"]) == 0

    def test_json_format_and_exit_code(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        exit_code = lint_main(
            ["--format", "json", "tests/fixtures/rflint/rfp006_bad.py"]
        )
        assert exit_code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["files_checked"] == 1
        assert payload["files_reanalyzed"] == 1
        assert {f["rule"] for f in payload["findings"]} == {"RFP006"}

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULE_IDS:
            assert rule_id in out

    def test_missing_path_is_usage_error(self, capsys):
        assert lint_main(["no/such/dir"]) == 2
        assert "error" in capsys.readouterr().err

    def test_python_m_entry_point(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")]
        ).rstrip(os.pathsep)
        completed = subprocess.run(
            [sys.executable, "-m", "repro.devtools.lint", "--list-rules"],
            cwd=REPO_ROOT, env=env, capture_output=True, text=True,
            timeout=120,
        )
        assert completed.returncode == 0
        assert "RFP001" in completed.stdout
        assert "RFP014" in completed.stdout


class TestEnvRegistry:
    def test_synth_backend_registered(self):
        assert "RF_PROTECT_SYNTH" in ENV_REGISTRY

    def test_lint_cache_knob_registered(self):
        assert "RF_PROTECT_LINT_CACHE" in ENV_REGISTRY

    def test_default_and_explicit(self):
        assert get_synth_backend({}) == "vectorized"
        assert get_synth_backend({"RF_PROTECT_SYNTH": " Naive "}) == "naive"

    def test_invalid_value_rejected(self):
        with pytest.raises(ConfigurationError, match="RF_PROTECT_SYNTH"):
            get_synth_backend({"RF_PROTECT_SYNTH": "turbo"})


class TestTypingGate:
    def test_mypy_strict_packages(self):
        pytest.importorskip("mypy", reason="mypy not installed")
        completed = subprocess.run(
            [sys.executable, "-m", "mypy"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=600,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr
