"""Tests for repro.eavesdropper: inference, the smart classifier, and the
legitimate sensor's ghost filtering."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TrackingError
from repro.eavesdropper import (
    TrajectoryRealnessClassifier,
    count_occupants,
    estimate_breathing_period,
    filter_ghost_trajectories,
    is_occupied,
)
from repro.gan import random_motion_baseline, single_trajectory_baseline
from repro.geometry import Rectangle
from repro.radar import FmcwRadar, RadarConfig, Scene
from repro.radar.scene import BreathingSpec
from repro.reflector.tag import GhostReport
from repro.trajectories import HumanMotionSimulator
from repro.types import Trajectory


def _radar():
    return FmcwRadar(RadarConfig(position=(5.0, 0.1), axis_angle=0.0,
                                 facing_angle=np.pi / 2))


def _sense(scene_builder, duration=8.0, seed=6):
    radar = _radar()
    scene = Scene(Rectangle.from_size(10.0, 6.6))
    scene_builder(scene)
    return radar.sense(scene, duration, rng=np.random.default_rng(seed))


class TestOccupancyInference:
    def test_empty_room_unoccupied(self):
        result = _sense(lambda s: s.add_static((3.0, 3.0), rcs=4.0))
        assert not is_occupied(result)

    def test_walker_detected(self, straight_walk):
        result = _sense(lambda s: s.add_human(straight_walk))
        assert is_occupied(result)

    def test_count_single_walker(self, straight_walk):
        result = _sense(lambda s: s.add_human(straight_walk))
        assert count_occupants(result) == 1

    def test_count_two_walkers(self):
        walk_a = Trajectory(np.linspace([2.0, 2.0], [2.5, 5.0], 50),
                            dt=8.0 / 49.0)
        walk_b = Trajectory(np.linspace([8.0, 5.0], [7.5, 2.0], 50),
                            dt=8.0 / 49.0)

        def build(scene):
            scene.add_human(walk_a)
            scene.add_human(walk_b)

        result = _sense(build)
        assert count_occupants(result) == 2

    def test_count_zero_in_empty_room(self):
        result = _sense(lambda s: None)
        assert count_occupants(result) == 0

    def test_count_rejects_bad_fraction(self, straight_walk):
        result = _sense(lambda s: s.add_human(straight_walk))
        with pytest.raises(TrackingError):
            count_occupants(result, min_overlap_fraction=0.0)


class TestBreathingEstimation:
    def test_recovers_breathing_period(self):
        position = np.array([5.0, 4.0])

        def build(scene):
            scene.add_human(
                Trajectory(np.vstack([position, position]), dt=30.0),
                breathing=BreathingSpec(frequency=0.25),
                rcs_fluctuation=0.0,
            )

        result = _sense(build, duration=30.0)
        distance = _radar().array.range_to(position)
        period = estimate_breathing_period(result, distance)
        assert period == pytest.approx(4.0, rel=0.05)


class TestRealnessClassifier:
    def test_separates_random_motion_easily(self, rng, small_dataset):
        fakes = random_motion_baseline(60, rng,
                                       step_scale=small_dataset.step_scale())
        classifier = TrajectoryRealnessClassifier()
        real_train, real_test = small_dataset.split(0.5, rng)
        classifier.fit(real_train, fakes.subset(range(30)))
        accuracy = classifier.accuracy(real_test, fakes.subset(range(30, 60)))
        assert accuracy > 0.85

    def test_separates_repeated_trajectory(self, rng, small_dataset):
        reference = small_dataset[0]
        fakes = single_trajectory_baseline(reference, 60, rng)
        classifier = TrajectoryRealnessClassifier()
        real_train, real_test = small_dataset.split(0.5, rng)
        classifier.fit(real_train, fakes.subset(range(30)))
        accuracy = classifier.accuracy(real_test, fakes.subset(range(30, 60)))
        assert accuracy > 0.6

    def test_cannot_separate_real_from_real(self, rng, small_dataset):
        half_a, half_b = small_dataset.split(0.5, rng)
        quarter_a, quarter_b = half_a.split(0.5, rng)
        classifier = TrajectoryRealnessClassifier()
        classifier.fit(quarter_a, quarter_b)  # "fake" is also real
        test_a, test_b = half_b.split(0.5, rng)
        accuracy = classifier.accuracy(test_a, test_b)
        assert abs(accuracy - 0.5) < 0.2

    def test_predict_before_fit_raises(self, small_dataset):
        classifier = TrajectoryRealnessClassifier()
        with pytest.raises(ConfigurationError):
            classifier.predict(small_dataset)

    def test_probabilities_in_unit_interval(self, rng, small_dataset):
        fakes = random_motion_baseline(20, rng)
        classifier = TrajectoryRealnessClassifier()
        classifier.fit(small_dataset, fakes)
        probabilities = classifier.predict_probability(small_dataset)
        assert np.all((probabilities >= 0) & (probabilities <= 1))

    def test_rejects_bad_hyperparameters(self):
        with pytest.raises(ConfigurationError):
            TrajectoryRealnessClassifier(learning_rate=0.0)


class TestGhostFiltering:
    def _report(self, trajectory, ghost_id=0):
        return GhostReport(ghost_id=ghost_id, trajectory=trajectory,
                           start_time=0.0)

    def test_exact_match_removed(self, sample_trajectory):
        sensed = [sample_trajectory, sample_trajectory.translated([5.0, 0.0])]
        reports = [self._report(sample_trajectory.centered())]
        real, matches = filter_ghost_trajectories(sensed, reports)
        assert len(matches) == 1
        assert len(real) == 1

    def test_rotated_ghost_still_matched(self, sample_trajectory):
        # The sensed ghost is rotated/translated relative to the disclosed
        # one (unknown radar pose) — matching must be rigid-invariant.
        sensed_ghost = sample_trajectory.rotated(0.6).translated([2.0, 1.0])
        other = Trajectory(np.linspace([0, 0], [3, 1], 50), dt=0.2)
        real, matches = filter_ghost_trajectories(
            [other, sensed_ghost], [self._report(sample_trajectory)]
        )
        assert len(matches) == 1
        assert matches[0].trajectory_index == 1
        assert real == [other]

    def test_unrelated_trajectory_not_removed(self, sample_trajectory):
        walk = Trajectory(np.linspace([0, 0], [4, 0], 50), dt=0.2)
        real, matches = filter_ghost_trajectories(
            [walk], [self._report(sample_trajectory)]
        )
        assert matches == []
        assert real == [walk]

    def test_one_to_one_assignment(self, sample_trajectory):
        # Two near-identical sensed trajectories, one report: only one is
        # claimed.
        twin = sample_trajectory.translated([0.02, 0.0])
        real, matches = filter_ghost_trajectories(
            [sample_trajectory, twin], [self._report(sample_trajectory)]
        )
        assert len(matches) == 1
        assert len(real) == 1

    def test_empty_inputs(self):
        assert filter_ghost_trajectories([], []) == ([], [])

    def test_rejects_bad_threshold(self, sample_trajectory):
        with pytest.raises(TrackingError):
            filter_ghost_trajectories([sample_trajectory], [],
                                      match_threshold=0.0)
