"""Smoke tests: every example script must run to completion.

Examples are the public face of the library; a broken example is a broken
deliverable. Each is executed in-process with its ``main()`` called
directly (fast ones) so failures surface in the suite.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _load_example(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"),
                                                  path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamplesExist:
    def test_at_least_three_examples(self):
        scripts = sorted(EXAMPLES_DIR.glob("*.py"))
        assert len(scripts) >= 3
        assert (EXAMPLES_DIR / "quickstart.py").exists()

    def test_all_examples_have_main(self):
        for path in EXAMPLES_DIR.glob("*.py"):
            module = _load_example(path.name)
            assert hasattr(module, "main"), f"{path.name} lacks main()"
            assert module.__doc__, f"{path.name} lacks a docstring"


class TestExamplesRun:
    @pytest.mark.parametrize("script", [
        "quickstart.py",
        "breathing_spoof.py",
        "legitimate_sensing.py",
        "pulsed_radar_defense.py",
        "serving_demo.py",
    ])
    def test_example_runs(self, script, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", [script])
        module = _load_example(script)
        module.main()
        output = capsys.readouterr().out
        assert len(output) > 50  # produced a real report
