"""Tests for repro.experiments: environments, per-figure runs (fast), CLI.

These are the reproduction's acceptance tests: each figure's *shape-level*
claim must hold even at the fast/tiny experiment scale.
"""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.cli import main as cli_main
from repro.experiments import (
    EXPERIMENTS,
    home_environment,
    office_environment,
    run_experiment,
)
from repro.experiments import fig7, fig9, table1
from repro.experiments.artifacts import trained_gan
from repro.experiments.fig9 import rectangle_path, s_curve_path
from repro.types import Trajectory


class TestEnvironments:
    def test_paper_dimensions(self):
        office = office_environment()
        home = home_environment()
        assert office.room.width == pytest.approx(10.0)
        assert office.room.depth == pytest.approx(6.6)
        assert home.room.width == pytest.approx(15.24)
        assert home.room.depth == pytest.approx(7.62)

    def test_radar_panel_separation_is_paper_value(self):
        for environment in (office_environment(), home_environment()):
            separation = np.linalg.norm(
                environment.panel.center - environment.radar_position
            )
            assert separation == pytest.approx(1.2, abs=0.01)

    def test_office_has_heavier_multipath(self):
        office = office_environment()
        home = home_environment()
        assert (office.multipath.relative_amplitude
                > home.multipath.relative_amplitude)
        assert office.multipath.mean_paths > home.multipath.mean_paths

    def test_clutter_inside_rooms(self):
        for environment in (office_environment(), home_environment()):
            for x, y, _rcs in environment.static_clutter:
                assert environment.room.contains((x, y))

    def test_make_scene_contains_clutter(self):
        environment = office_environment()
        scene = environment.make_scene()
        assert len(scene.entities) == len(environment.static_clutter)
        bare = environment.make_scene(include_clutter=False)
        assert bare.entities == []

    def test_controller_nominal_assumption_close_to_truth(self):
        # The tag assumes the radar sits behind the panel; in these
        # deployments that assumption is nearly exact, which is why the
        # measured trajectories match intent so closely.
        environment = office_environment()
        controller = environment.make_controller()
        assert controller.radar_position == pytest.approx(
            environment.radar_position, abs=0.05
        )


class TestFig7:
    def test_shape_claims(self):
        result = fig7.run(q_points=11)
        # q=0 and q=1 leak H(X); the interior dips.
        for row_index in range(len(result.phantom_counts)):
            row = result.mutual_information_bits[row_index]
            assert row[0] == pytest.approx(result.baseline_entropy_bits,
                                           abs=1e-6)
            assert row[-1] == pytest.approx(result.baseline_entropy_bits,
                                            abs=1e-6)
            assert 0.3 <= result.minimum_q(row_index) <= 0.7
        # Leakage at the minimum decreases with M.
        minima = result.mutual_information_bits.min(axis=1)
        assert all(b < a for a, b in zip(minima, minima[1:]))

    def test_format_table_mentions_parameters(self):
        text = fig7.run(q_points=5).format_table()
        assert "N=4" in text
        assert "M=8" in text


class TestFig9:
    def test_paths_are_in_room(self):
        environment = office_environment()
        center = environment.room.center
        for path in (rectangle_path(center, 3.0, 2.0, 40, 0.2),
                     s_curve_path(center, 4.0, 2.0, 40, 0.2)):
            assert environment.room.contains_all(path.points)

    def test_localization_close_to_resolution(self):
        result = fig9.run(duration=6.0)
        assert len(result.path_names) == 2
        for median in result.median_errors_m:
            # Within ~2 range bins, as the paper's Fig. 9 shows.
            assert median < 2.5 * result.range_resolution_m


class TestFig10:
    def test_ghost_power_comparable_to_human(self, tiny_gan):
        result = run_experiment("fig10", fast=True)
        # Fig. 10's claim: phantom reflection power is human-like — here
        # within 10 dB (exact parity depends on where the human stands).
        assert abs(result.peak_power_ratio_db) < 10.0

    def test_replay_tracks_intended_shape(self, tiny_gan):
        result = run_experiment("fig10", fast=True)
        assert result.replay_median_error_m < 0.5
        assert len(result.spoofed_trajectory) > 10


class TestFig11:
    def test_sweep_produces_errors_within_sanity(self, tiny_gan):
        result = run_experiment("fig11", fast=True)
        assert set(result.sweeps) == {"home", "office"}
        for sweep in result.sweeps.values():
            medians = sweep.medians()
            assert medians["location_m"] < 0.6
            assert medians["angle_deg"] < 15.0
            values, levels = sweep.cdf("location")
            assert np.all(np.diff(values) >= 0)
            assert levels[-1] == pytest.approx(1.0)

    def test_cdf_unknown_family_rejected(self, tiny_gan):
        result = run_experiment("fig11", fast=True)
        with pytest.raises(ExperimentError):
            result.sweeps["home"].cdf("nonsense")


class TestFig12:
    def test_gan_beats_all_baselines(self, tiny_gan):
        result = run_experiment("fig12", fast=True)
        assert result.ordering_holds()
        assert result.normalized_fid["Random"] > result.normalized_fid["ULM"]

    def test_classifier_nails_random_motion(self, tiny_gan):
        result = run_experiment("fig12", fast=True)
        assert result.classifier_accuracy["Random"] > 0.9


class TestFig13:
    def test_ghost_filtered_human_recovered(self, tiny_gan):
        result = run_experiment("fig13", fast=True)
        assert result.eavesdropper_count == 2
        assert result.legitimate_count == 1
        assert result.ghost_matched
        assert result.human_recovery_error_m < 0.3


class TestFig14:
    def test_both_periods_recovered(self):
        result = run_experiment("fig14", fast=True)
        assert result.human_estimated_period_s == pytest.approx(
            result.human_true_period_s, rel=0.1
        )
        assert result.ghost_estimated_period_s == pytest.approx(
            result.ghost_true_period_s, rel=0.1
        )


class TestTable1:
    def test_no_significant_association(self, tiny_gan):
        result = run_experiment("table1", fast=True)
        assert result.table.sum() == 8 * 2 * 5  # raters x classes x per_class
        assert not result.test.significant()

    def test_rater_model_accepts_most_real(self, tiny_gan, small_dataset):
        model = table1.RaterModel(small_dataset,
                                  rng=np.random.default_rng(0),
                                  judgement_noise=0.0)
        accepted = np.mean([model.perceive_real(t) for t in small_dataset])
        assert 0.4 <= accepted <= 0.8

    def test_rater_model_rejects_absurd_motion(self, small_dataset):
        model = table1.RaterModel(small_dataset,
                                  rng=np.random.default_rng(0),
                                  judgement_noise=0.0)
        teleporting = Trajectory(
            np.random.default_rng(1).uniform(0, 10, (50, 2)), dt=0.2
        )
        assert not model.perceive_real(teleporting)


class TestRunnerAndCli:
    def test_registry_covers_all_paper_results(self):
        paper_results = {"fig7", "fig9", "fig10", "fig11", "fig12", "fig13",
                         "fig14", "table1"}
        extensions = {"ext-multiradar", "ext-pulsed", "ext-floorplan"}
        assert set(EXPERIMENTS) == paper_results | extensions

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ExperimentError):
            run_experiment("fig99")

    def test_cli_list(self, capsys):
        assert cli_main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig11" in output
        assert "table1" in output

    def test_cli_run_fig7(self, capsys):
        assert cli_main(["run", "fig7", "--fast"]) == 0
        output = capsys.readouterr().out
        assert "Fig. 7" in output

    def test_cli_unknown_experiment_fails(self, capsys):
        assert cli_main(["run", "fig99"]) == 1
        assert "unknown experiment" in capsys.readouterr().err
