"""Tests for the extension experiments and multi-radar coordination."""

import numpy as np
import pytest

from repro.errors import TrackingError
from repro.eavesdropper import classify_by_consistency, cross_view_distance
from repro.experiments import run_experiment
from repro.experiments.ext_floorplan import apartment_floor_plan
from repro.reflector import ReflectorController, ReflectorPanel, RfProtectTag
from repro.signal import ChirpConfig
from repro.types import Trajectory


class TestCrossViewDistance:
    def test_identical_views_zero(self, sample_trajectory):
        assert cross_view_distance(sample_trajectory,
                                   sample_trajectory) == pytest.approx(0.0)

    def test_offset_views_measured(self, sample_trajectory):
        shifted = sample_trajectory.translated([2.0, 0.0])
        assert cross_view_distance(sample_trajectory,
                                   shifted) == pytest.approx(2.0)

    def test_rigid_offset_not_forgiven(self, sample_trajectory):
        # Consistency is absolute by design: a rotated view is inconsistent.
        rotated = sample_trajectory.rotated(0.5, about=(5.0, 5.0))
        assert cross_view_distance(sample_trajectory, rotated) > 0.1

    def test_rejects_degenerate_tracks(self, sample_trajectory):
        short = Trajectory([[0.0, 0.0], [0.0, 0.0]], dt=1.0)
        # Two points is the minimum; one-point trajectories can't exist, so
        # exercise the resampling path instead.
        assert cross_view_distance(short, sample_trajectory) > 0


class TestClassifyByConsistency:
    def test_consistent_pair_judged_real(self, sample_trajectory, rng):
        noisy = sample_trajectory.replace(
            points=sample_trajectory.points + rng.normal(0, 0.05, (50, 2))
        )
        report = classify_by_consistency([sample_trajectory], [noisy])
        assert report.num_judged_real == 1
        assert report.num_judged_fake == 0

    def test_inconsistent_tracks_judged_fake(self, sample_trajectory):
        elsewhere = sample_trajectory.translated([5.0, 3.0])
        report = classify_by_consistency([sample_trajectory], [elsewhere])
        assert report.num_judged_real == 0
        assert report.num_judged_fake == 2

    def test_one_to_one_matching(self, sample_trajectory, rng):
        twin = sample_trajectory.translated([0.05, 0.0])
        report = classify_by_consistency(
            [sample_trajectory, twin], [sample_trajectory]
        )
        assert report.num_judged_real == 1
        assert len(report.inconsistent_a) == 1

    def test_rejects_bad_threshold(self, sample_trajectory):
        with pytest.raises(TrackingError):
            classify_by_consistency([sample_trajectory],
                                    [sample_trajectory], threshold=0.0)


class TestExtMultiRadarExperiment:
    def test_ghost_exposed(self, tiny_gan):
        result = run_experiment("ext-multiradar", fast=True)
        assert result.radar_a_targets == 2
        assert result.ghost_exposed()
        assert (result.ghost_cross_view_distance_m
                > result.human_cross_view_distance_m)
        assert result.report.num_judged_real >= 1


class TestExtPulsedExperiment:
    def test_three_claims(self):
        result = run_experiment("ext-pulsed", fast=True)
        assert result.human_tracking_error_m < 0.15
        assert result.fmcw_tag_tracks == 0
        assert result.delay_tag_tracks >= 1
        assert result.delay_tag_replay_error_m < 2.5 * result.line_spacing_m


class TestExtFloorplanExperiment:
    def test_constraint_eliminates_crossings(self, tiny_gan):
        result = run_experiment("ext-floorplan", fast=True)
        assert result.constrained_crossings_total == 0
        # With random placement in a two-room plan, some unconstrained
        # ghosts must cross (the limitation the paper acknowledges).
        assert result.unconstrained_crossings_total >= 1

    def test_apartment_plan_is_sane(self):
        plan = apartment_floor_plan()
        assert len(plan.walls) == 3
        # The doorway is passable.
        assert not plan.step_crosses_wall(np.array([4.5, 3.2]),
                                          np.array([5.5, 3.2]))


class TestRcsMimicry:
    def test_amplitude_scale_commands(self, rng):
        panel = ReflectorPanel((5.0, 1.3), wall_angle=0.0,
                               normal_angle=np.pi / 2)
        controller = ReflectorController(panel, ChirpConfig(),
                                         rcs_variation=0.25)
        ghost = Trajectory(np.linspace([4.5, 4.0], [5.5, 5.0], 30), dt=0.4)
        schedule = controller.plan_trajectory(ghost, rng=rng)
        scales = np.array([c.amplitude_scale for c in schedule.commands])
        assert scales.std() > 0.05   # mimicry active
        assert np.all(scales > 0)

    def test_no_variation_by_default(self):
        panel = ReflectorPanel((5.0, 1.3), wall_angle=0.0,
                               normal_angle=np.pi / 2)
        controller = ReflectorController(panel, ChirpConfig())
        ghost = Trajectory(np.linspace([4.5, 4.0], [5.5, 5.0], 30), dt=0.4)
        schedule = controller.plan_trajectory(ghost)
        scales = [c.amplitude_scale for c in schedule.commands]
        assert scales == pytest.approx(np.ones(len(scales)))

    def test_tag_applies_scale(self, rng):
        from repro.radar import ChannelModel, RadarConfig, UniformLinearArray
        panel = ReflectorPanel((5.0, 1.3), wall_angle=0.0,
                               normal_angle=np.pi / 2)
        array = UniformLinearArray(RadarConfig(position=(5.0, 0.1),
                                               facing_angle=np.pi / 2))
        controller = ReflectorController(panel, ChirpConfig(),
                                         rcs_variation=0.3)
        ghost = Trajectory(np.linspace([4.5, 4.0], [5.5, 5.0], 30), dt=0.4)
        tag = RfProtectTag(panel)
        tag.deploy(controller.plan_trajectory(ghost, rng=rng))
        channel = ChannelModel()
        amp_early = max(c.amplitude for c in
                        tag.path_components(0.05, array, channel, rng))
        amp_late = max(c.amplitude for c in
                       tag.path_components(5.0, array, channel, rng))
        assert amp_early != pytest.approx(amp_late, rel=1e-6)
