"""Tests for repro.trajectories.floorplan (Sec. 8 extension)."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.geometry import Rectangle
from repro.trajectories import (
    FloorPlan,
    FloorPlanConstraint,
    Wall,
    count_wall_crossings,
)
from repro.types import Trajectory


@pytest.fixture()
def plan():
    footprint = Rectangle.from_size(10.0, 6.0)
    return FloorPlan(footprint, walls=[Wall((5.0, 0.0), (5.0, 4.0))])


class TestWall:
    def test_rejects_degenerate(self):
        with pytest.raises(DatasetError):
            Wall((1.0, 1.0), (1.0, 1.0))


class TestFloorPlan:
    def test_rejects_wall_outside_room(self):
        footprint = Rectangle.from_size(4.0, 4.0)
        with pytest.raises(DatasetError):
            FloorPlan(footprint, walls=[Wall((1.0, 1.0), (9.0, 1.0))])

    def test_step_crossing_detected(self, plan):
        assert plan.step_crosses_wall(np.array([4.0, 2.0]),
                                      np.array([6.0, 2.0]))

    def test_step_through_doorway_allowed(self, plan):
        # The wall spans y in [0, 4]; crossing above it is fine.
        assert not plan.step_crosses_wall(np.array([4.0, 5.0]),
                                          np.array([6.0, 5.0]))

    def test_step_parallel_to_wall_allowed(self, plan):
        assert not plan.step_crosses_wall(np.array([4.0, 1.0]),
                                          np.array([4.0, 3.0]))

    def test_touching_endpoint_counts(self, plan):
        # Grazing the wall's end point is a contact.
        assert plan.step_crosses_wall(np.array([4.0, 4.0]),
                                      np.array([6.0, 4.0]))

    def test_crossing_steps_indices(self, plan):
        trajectory = Trajectory(
            [[4.0, 2.0], [4.5, 2.0], [5.5, 2.0], [6.0, 2.0]], dt=1.0
        )
        assert list(plan.crossing_steps(trajectory)) == [1]
        assert count_wall_crossings(trajectory, plan) == 1

    def test_is_admissible(self, plan):
        good = Trajectory([[1.0, 1.0], [2.0, 2.0], [3.0, 1.0]], dt=1.0)
        bad = Trajectory([[4.0, 2.0], [6.0, 2.0]], dt=1.0)
        outside = Trajectory([[1.0, 1.0], [11.0, 1.0]], dt=1.0)
        assert plan.is_admissible(good)
        assert not plan.is_admissible(bad)
        assert not plan.is_admissible(outside)

    def test_add_wall(self, plan):
        plan.add_wall((7.0, 2.0), (9.0, 2.0))
        assert plan.step_crosses_wall(np.array([8.0, 1.0]),
                                      np.array([8.0, 3.0]))


class TestFloorPlanConstraint:
    def test_admissible_passes_through_unchanged(self, plan):
        constraint = FloorPlanConstraint(plan)
        trajectory = Trajectory([[1.0, 1.0], [2.0, 2.0], [3.0, 1.0]], dt=1.0)
        admissible, rejected = constraint.filter([trajectory])
        assert rejected == 0
        assert admissible[0].points == pytest.approx(trajectory.points)

    def test_glancing_crossing_repaired(self, plan):
        # One point barely over the wall.
        trajectory = Trajectory(
            [[4.0, 2.0], [4.6, 2.0], [5.1, 2.0], [4.6, 2.4], [4.0, 2.4]],
            dt=1.0,
        )
        constraint = FloorPlanConstraint(plan)
        repaired = constraint.repair(trajectory)
        assert repaired is not None
        assert plan.is_admissible(repaired)

    def test_deep_crossing_stops_at_wall(self, plan):
        # Walks straight through and keeps going: repaired by halting.
        trajectory = Trajectory(
            np.column_stack([np.linspace(3.0, 8.0, 20), np.full(20, 2.0)]),
            dt=0.5,
        )
        constraint = FloorPlanConstraint(plan)
        repaired = constraint.repair(trajectory)
        assert repaired is not None
        assert plan.is_admissible(repaired)
        # The repaired ghost never reaches the far room.
        assert repaired.points[:, 0].max() < 5.1

    def test_filter_counts_rejections(self, plan):
        good = Trajectory([[1.0, 1.0], [2.0, 2.0], [1.5, 1.5]], dt=1.0)
        deep = Trajectory(
            np.column_stack([np.linspace(3.0, 8.0, 10), np.full(10, 2.0)]),
            dt=0.5,
        )
        constraint = FloorPlanConstraint(plan)
        admissible, rejected = constraint.filter([good, deep])
        # The deep crossing is repairable via stop-at-wall, so nothing is
        # rejected and both survive.
        assert rejected == 0
        assert len(admissible) == 2
        assert all(plan.is_admissible(t) for t in admissible)

    def test_rejects_bad_parameters(self, plan):
        with pytest.raises(DatasetError):
            FloorPlanConstraint(plan, margin=-0.1)
        with pytest.raises(DatasetError):
            FloorPlanConstraint(plan, max_repair_iterations=0)
