"""Golden equivalence suite: vectorized vs naive frame synthesis.

The batched engine in `repro.radar.batch` is only trusted because these
tests pin it to the reference per-component kernel at ``atol=1e-10``
across randomized component sets, every ``PathComponent`` field, the empty
frame, noise streams, and the super-Nyquist drop rule.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.radar import (
    SYNTH_STATS,
    FmcwRadar,
    PathComponent,
    RadarConfig,
    Scene,
    UniformLinearArray,
    pack_components,
    synthesis_backend,
    synthesize_frame,
    synthesize_frame_naive,
    synthesize_frame_vectorized,
    synthesize_frames,
)
from repro.errors import ConfigurationError
from repro.geometry import Rectangle

ATOL = 1e-10


@pytest.fixture(scope="module")
def config() -> RadarConfig:
    return RadarConfig()


@pytest.fixture(scope="module")
def array(config) -> UniformLinearArray:
    return UniformLinearArray(config)


def random_components(rng: np.random.Generator, count: int,
                      config: RadarConfig) -> list[PathComponent]:
    """Component sets exercising every PathComponent field."""
    components = []
    for _ in range(count):
        components.append(PathComponent(
            distance=float(rng.uniform(0.0, 14.0)),
            angle=float(rng.uniform(1e-3, np.pi - 1e-3)),
            amplitude=float(rng.uniform(0.0, 0.3)),
            beat_offset_hz=float(rng.uniform(-5e4, 5e4)),
            phase_offset=float(rng.uniform(0.0, 2.0 * np.pi)),
            extra_delay_s=float(rng.uniform(0.0, 3e-8)),
        ))
    return components


class TestFrameEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("count", [1, 3, 17, 50])
    def test_randomized_component_sets(self, config, array, seed, count):
        rng = np.random.default_rng(seed)
        components = random_components(rng, count, config)
        naive = synthesize_frame_naive(components, config, array, None)
        vectorized = synthesize_frame_vectorized(components, config, array, None)
        np.testing.assert_allclose(vectorized, naive, atol=ATOL)

    def test_empty_component_list(self, config, array):
        naive = synthesize_frame_naive([], config, array, None)
        vectorized = synthesize_frame_vectorized([], config, array, None)
        assert naive.shape == vectorized.shape
        assert np.all(vectorized == 0)
        np.testing.assert_array_equal(vectorized, naive)

    def test_noise_streams_are_bit_identical(self, config, array):
        components = random_components(np.random.default_rng(1), 5, config)
        naive = synthesize_frame_naive(components, config, array,
                                       np.random.default_rng(99))
        vectorized = synthesize_frame_vectorized(components, config, array,
                                                 np.random.default_rng(99))
        # Tones agree to ATOL; the noise added on top is bit-identical
        # because both kernels draw through the same helper.
        np.testing.assert_allclose(vectorized, naive, atol=ATOL)

    def test_packed_input_accepted(self, config, array):
        components = random_components(np.random.default_rng(4), 9, config)
        from_list = synthesize_frame_vectorized(components, config, array, None)
        from_packed = synthesize_frame_vectorized(
            pack_components(components), config, array, None)
        np.testing.assert_array_equal(from_list, from_packed)


class TestNyquistDropParity:
    def super_nyquist_components(self, config) -> list[PathComponent]:
        chirp = config.chirp
        return [
            # Geometric distance beyond the unambiguous range.
            PathComponent(chirp.max_unambiguous_range + 3.0, 1.0, 0.1),
            # Beat offset pushes an in-range path over Nyquist.
            PathComponent(1.0, 1.2, 0.1,
                          beat_offset_hz=chirp.sample_rate),
            # Negative offset below -Nyquist.
            PathComponent(0.5, 0.8, 0.1,
                          beat_offset_hz=-chirp.sample_rate),
            # Exactly at Nyquist: the `>=` cut drops it in both kernels.
            PathComponent(0.0, 1.5, 0.1,
                          beat_offset_hz=chirp.sample_rate / 2.0),
            # Extra delay alone carries the tone out of band.
            PathComponent(0.0, 0.4, 0.1,
                          extra_delay_s=2.0 * chirp.max_unambiguous_range
                          / 3.0e8 * 1.5),
        ]

    def test_super_nyquist_tones_dropped_identically(self, config, array):
        components = self.super_nyquist_components(config)
        survivors = random_components(np.random.default_rng(2), 4, config)
        mixed = components + survivors
        naive = synthesize_frame_naive(mixed, config, array, None)
        vectorized = synthesize_frame_vectorized(mixed, config, array, None)
        np.testing.assert_allclose(vectorized, naive, atol=ATOL)
        # The dropped tones contribute nothing at all.
        only_survivors = synthesize_frame_naive(survivors, config, array, None)
        np.testing.assert_allclose(vectorized, only_survivors, atol=ATOL)

    def test_dropped_tone_counts_match(self, config, array):
        components = self.super_nyquist_components(config)
        components += random_components(np.random.default_rng(3), 6, config)

        SYNTH_STATS.reset()
        synthesize_frame_naive(components, config, array, None)
        naive_dropped = SYNTH_STATS.dropped_tones
        assert naive_dropped == 5

        SYNTH_STATS.reset()
        synthesize_frame_vectorized(components, config, array, None)
        assert SYNTH_STATS.dropped_tones == naive_dropped
        assert SYNTH_STATS.components_seen == len(components)
        assert SYNTH_STATS.frames_synthesized == 1

    def test_drop_emits_debug_log(self, config, array, caplog):
        far = PathComponent(config.chirp.max_unambiguous_range + 3.0, 1.0, 0.1)
        with caplog.at_level("DEBUG", logger="repro.radar.frontend"):
            synthesize_frame_naive([far], config, array, None)
            synthesize_frame_vectorized([far], config, array, None)
        drops = [r for r in caplog.records if "super-Nyquist" in r.message]
        assert len(drops) == 2
        assert all(r.levelname == "DEBUG" for r in drops)


class TestBackendDispatch:
    def test_env_toggle_selects_backend(self, config, array, monkeypatch):
        components = random_components(np.random.default_rng(5), 7, config)
        monkeypatch.setenv("RF_PROTECT_SYNTH", "naive")
        assert synthesis_backend() == "naive"
        naive = synthesize_frame(components, config, array, None)
        monkeypatch.setenv("RF_PROTECT_SYNTH", "vectorized")
        assert synthesis_backend() == "vectorized"
        vectorized = synthesize_frame(components, config, array, None)
        np.testing.assert_allclose(vectorized, naive, atol=ATOL)

    def test_default_backend_is_vectorized(self, monkeypatch):
        monkeypatch.delenv("RF_PROTECT_SYNTH", raising=False)
        assert synthesis_backend() == "vectorized"

    def test_invalid_backend_rejected(self, monkeypatch):
        monkeypatch.setenv("RF_PROTECT_SYNTH", "turbo")
        with pytest.raises(ConfigurationError, match="RF_PROTECT_SYNTH"):
            synthesis_backend()


class TestSweepEquivalence:
    def test_sweep_matches_per_frame_synthesis(self, config, array):
        rng = np.random.default_rng(11)
        per_frame = [random_components(rng, count, config)
                     for count in (4, 0, 12, 1, 27)]
        sweep = synthesize_frames(per_frame, config, array, None)
        for frame, components in zip(sweep, per_frame):
            reference = synthesize_frame_naive(components, config, array, None)
            np.testing.assert_allclose(frame, reference, atol=ATOL)

    def test_sweep_noise_stream_matches_single_frames(self, config, array):
        rng = np.random.default_rng(13)
        per_frame = [random_components(rng, 5, config) for _ in range(4)]
        sweep = synthesize_frames(per_frame, config, array,
                                  np.random.default_rng(42))
        single_rng = np.random.default_rng(42)
        for frame, components in zip(sweep, per_frame):
            reference = synthesize_frame_vectorized(components, config, array,
                                                    single_rng)
            np.testing.assert_array_equal(frame, reference)

    def test_sense_is_backend_independent(self, monkeypatch):
        """A full sensing session reproduces bit-compatibly per backend."""
        room = Rectangle(0.0, 0.0, 8.0, 6.0)
        results = {}
        for backend in ("naive", "vectorized"):
            monkeypatch.setenv("RF_PROTECT_SYNTH", backend)
            scene = Scene(room)
            scene.add_static((2.0, 3.0))
            scene.add_static((5.0, 4.0), rcs=0.5)
            radar = FmcwRadar()
            results[backend] = radar.sense(scene, 0.5,
                                           rng=np.random.default_rng(21))
        naive, vectorized = results["naive"], results["vectorized"]
        np.testing.assert_allclose(vectorized.raw_profiles,
                                   naive.raw_profiles, atol=1e-8)
        for p_vec, p_naive in zip(vectorized.profiles, naive.profiles):
            np.testing.assert_allclose(p_vec.power, p_naive.power,
                                       rtol=1e-6, atol=1e-10)
