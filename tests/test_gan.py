"""Tests for repro.gan: generator, discriminator, trainer, sampler, baselines."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TrainingError
from repro.gan import (
    GanConfig,
    GanTrainer,
    TrajectoryDiscriminator,
    TrajectoryGenerator,
    TrajectorySampler,
    random_motion_baseline,
    single_trajectory_baseline,
    uniform_linear_motion_baseline,
)
from repro.gan.sampling import steps_to_trajectory
from repro.nn import Tensor
from repro.trajectories import HumanMotionSimulator


@pytest.fixture()
def generator(rng):
    return TrajectoryGenerator(noise_dim=8, hidden_size=12, embed_dim=4,
                               num_steps=15, num_classes=5, rng=rng)


@pytest.fixture()
def discriminator(rng):
    return TrajectoryDiscriminator(hidden_size=12, embed_dim=4,
                                   feature_dim=8, num_classes=5, rng=rng)


class TestGenerator:
    def test_output_shape(self, generator, rng):
        z = generator.sample_noise(6, rng)
        steps = generator(z, np.zeros(6, dtype=int))
        assert steps.shape == (6, 15, 2)

    def test_noise_changes_output(self, generator, rng):
        labels = np.zeros(1, dtype=int)
        generator.eval()
        a = generator(generator.sample_noise(1, rng), labels).numpy()
        b = generator(generator.sample_noise(1, rng), labels).numpy()
        assert not np.allclose(a, b)

    def test_label_changes_output(self, generator, rng):
        generator.eval()
        z = generator.sample_noise(1, rng)
        a = generator(z, np.array([0])).numpy()
        b = generator(z, np.array([4])).numpy()
        assert not np.allclose(a, b)

    def test_generate_steps_is_eval_mode(self, generator, rng):
        generator.train()
        generator.generate_steps(2, np.zeros(2, dtype=int), rng)
        assert generator.training  # mode restored afterwards

    def test_rejects_bad_shapes(self, generator, rng):
        with pytest.raises(ConfigurationError):
            generator(Tensor(np.zeros((2, 99))), np.zeros(2, dtype=int))
        with pytest.raises(ConfigurationError):
            generator(generator.sample_noise(2, rng), np.zeros(3, dtype=int))

    def test_gradients_reach_all_parameters(self, generator, rng):
        z = generator.sample_noise(2, rng)
        out = generator(z, np.zeros(2, dtype=int))
        (out ** 2.0).sum().backward()
        for parameter in generator.parameters():
            assert parameter.grad is not None


class TestDiscriminator:
    def test_logit_shape(self, discriminator, rng):
        steps = rng.standard_normal((4, 15, 2))
        logits = discriminator(steps, np.zeros(4, dtype=int))
        assert logits.shape == (4, 1)

    def test_score_in_unit_interval(self, discriminator, rng):
        steps = rng.standard_normal((4, 15, 2))
        scores = discriminator.score(steps, np.zeros(4, dtype=int))
        assert np.all((scores > 0) & (scores < 1))

    def test_features_shape(self, discriminator, rng):
        steps = rng.standard_normal((3, 15, 2))
        features = discriminator.features(steps, np.zeros(3, dtype=int))
        assert features.shape == (3, 24)  # 2 * hidden_size

    def test_rejects_bad_shapes(self, discriminator, rng):
        with pytest.raises(ConfigurationError):
            discriminator(rng.standard_normal((4, 15, 3)),
                          np.zeros(4, dtype=int))
        with pytest.raises(ConfigurationError):
            discriminator(rng.standard_normal((4, 15, 2)),
                          np.zeros(5, dtype=int))

    def test_gradients_reach_all_parameters(self, discriminator, rng):
        steps = rng.standard_normal((2, 15, 2))
        logits = discriminator(steps, np.zeros(2, dtype=int))
        logits.sum().backward()
        for parameter in discriminator.parameters():
            assert parameter.grad is not None


class TestGanConfig:
    def test_paper_scale_matches_section_9(self):
        config = GanConfig.paper_scale()
        assert config.hidden_size == 512
        assert config.dropout_probability == 0.5
        assert config.batch_size == 128
        assert config.generator_lr == pytest.approx(1e-4)
        assert config.discriminator_lr == pytest.approx(2e-4)

    @pytest.mark.parametrize("kwargs", [
        {"epochs": 0},
        {"batch_size": 1},
        {"label_smoothing": 0.4},
        {"clip_norm": 0.0},
        {"feature_matching_weight": -1.0},
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(TrainingError):
            GanConfig(**kwargs)


class TestGanTrainer:
    @pytest.fixture()
    def small_setup(self):
        simulator = HumanMotionSimulator(rng=np.random.default_rng(3),
                                         num_points=16)
        dataset = simulator.build_dataset(48)
        config = GanConfig(noise_dim=6, hidden_size=10, embed_dim=4,
                           feature_dim=8, batch_size=16, epochs=1,
                           dropout_probability=0.0, seed=1)
        return GanTrainer(dataset, config)

    def test_one_epoch_records_history(self, small_setup):
        history = small_setup.train(epochs=1)
        assert len(history.discriminator_losses) == 3  # 48 // 16
        assert len(history.generator_losses) == 3
        summary = history.summary()
        assert np.isfinite(summary["discriminator_loss"])
        assert 0 <= summary["real_score"] <= 1

    def test_training_changes_generator(self, small_setup):
        before = [p.data.copy() for p in small_setup.generator.parameters()]
        small_setup.train(epochs=1)
        after = list(small_setup.generator.parameters())
        assert any(not np.allclose(b, a.data)
                   for b, a in zip(before, after))

    def test_discriminator_learns_something(self, small_setup):
        small_setup.train(epochs=3)
        summary = small_setup.history.summary()
        # After a few epochs, D should rate real above fake on average.
        assert summary["real_score"] > summary["fake_score"]

    def test_summary_before_training_raises(self, small_setup):
        with pytest.raises(TrainingError):
            small_setup.history.summary()

    def test_rejects_bad_epochs(self, small_setup):
        with pytest.raises(TrainingError):
            small_setup.train(epochs=0)


class TestSampler:
    def test_steps_to_trajectory_integration(self):
        steps = np.array([[1.0, 0.0], [0.0, 1.0]])
        trajectory = steps_to_trajectory(steps, scale=2.0, dt=0.5)
        assert len(trajectory) == 3
        # centered: net displacement preserved
        net = trajectory.points[-1] - trajectory.points[0]
        assert net == pytest.approx([2.0, 2.0])
        assert trajectory.centroid() == pytest.approx([0.0, 0.0])

    def test_steps_to_trajectory_validation(self):
        with pytest.raises(ConfigurationError):
            steps_to_trajectory(np.zeros((3, 3)), scale=1.0, dt=0.1)
        with pytest.raises(ConfigurationError):
            steps_to_trajectory(np.zeros((3, 2)), scale=0.0, dt=0.1)

    def test_sample_count_and_labels(self, generator, rng):
        sampler = TrajectorySampler(generator, step_scale=0.1, dt=0.2)
        samples = sampler.sample(5, label=3, rng=rng)
        assert len(samples) == 5
        assert all(t.label == 3 for t in samples)
        assert all(len(t) == 16 for t in samples)  # num_steps + 1

    def test_sample_random_labels(self, generator, rng):
        sampler = TrajectorySampler(generator, step_scale=0.1, dt=0.2)
        samples = sampler.sample(20, rng=rng)
        assert len({t.label for t in samples}) > 1

    def test_sample_rejects_bad_label(self, generator, rng):
        sampler = TrajectorySampler(generator, step_scale=0.1, dt=0.2)
        with pytest.raises(ConfigurationError):
            sampler.sample(1, label=9, rng=rng)


class TestBaselines:
    def test_single_trajectory_repeats_with_jitter(self, rng,
                                                   sample_trajectory):
        dataset = single_trajectory_baseline(sample_trajectory, 10, rng,
                                             jitter=0.02)
        assert len(dataset) == 10
        reference = sample_trajectory.centered()
        for trajectory in dataset:
            deviation = np.linalg.norm(
                trajectory.points - reference.points, axis=1
            ).max()
            assert deviation < 0.15  # same walk up to execution noise

    def test_ulm_is_straight_constant_speed(self, rng):
        dataset = uniform_linear_motion_baseline(5, rng)
        for trajectory in dataset:
            speeds = trajectory.speeds()
            assert speeds.std() == pytest.approx(0.0, abs=1e-9)
            assert np.abs(trajectory.turning_angles()).max() < 1e-6

    def test_random_motion_has_uncorrelated_steps(self, rng):
        dataset = random_motion_baseline(30, rng, step_scale=0.2)
        autocorrelations = []
        for trajectory in dataset:
            steps = trajectory.displacements().reshape(-1)
            a, b = steps[:-2], steps[2:]
            autocorrelations.append(
                a @ b / (np.linalg.norm(a) * np.linalg.norm(b))
            )
        assert abs(np.mean(autocorrelations)) < 0.15

    def test_baseline_format_matches_real(self, rng):
        ulm = uniform_linear_motion_baseline(3, rng, num_points=50)
        assert ulm.num_points == 50
        assert ulm.dt == pytest.approx(10.0 / 49.0)

    def test_rejects_bad_counts(self, rng, sample_trajectory):
        with pytest.raises(ConfigurationError):
            single_trajectory_baseline(sample_trajectory, 0, rng)
        with pytest.raises(ConfigurationError):
            uniform_linear_motion_baseline(0, rng)
        with pytest.raises(ConfigurationError):
            random_motion_baseline(5, rng, step_scale=0.0)
