"""Tests for repro.geometry: angles, rigid alignment, rectangles."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry import (
    Rectangle,
    RigidTransform,
    angle_difference,
    rigid_align,
    unit_vector,
    wrap_angle,
)


class TestAngles:
    def test_wrap_angle_identity_in_range(self):
        assert wrap_angle(0.5) == pytest.approx(0.5)

    def test_wrap_angle_wraps_positive(self):
        assert wrap_angle(np.pi + 0.1) == pytest.approx(-np.pi + 0.1)

    def test_wrap_angle_wraps_negative(self):
        assert wrap_angle(-np.pi - 0.1) == pytest.approx(np.pi - 0.1)

    def test_angle_difference_across_branch(self):
        assert angle_difference(3.1, -3.1) == pytest.approx(
            3.1 - (-3.1) - 2 * np.pi
        )

    def test_unit_vector(self):
        assert unit_vector(np.pi / 2) == pytest.approx([0.0, 1.0], abs=1e-12)


class TestRigidTransform:
    def test_identity(self):
        transform = RigidTransform.identity()
        points = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert transform.apply(points) == pytest.approx(points)

    def test_angle_property(self):
        angle = 0.7
        c, s = np.cos(angle), np.sin(angle)
        transform = RigidTransform(np.array([[c, -s], [s, c]]), np.zeros(2))
        assert transform.angle == pytest.approx(angle)

    def test_inverse_roundtrip(self, rng):
        angle = 1.1
        c, s = np.cos(angle), np.sin(angle)
        transform = RigidTransform(np.array([[c, -s], [s, c]]),
                                   np.array([2.0, -1.0]))
        points = rng.standard_normal((5, 2))
        roundtrip = transform.inverse().apply(transform.apply(points))
        assert roundtrip == pytest.approx(points)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ConfigurationError):
            RigidTransform(np.eye(3), np.zeros(2))
        with pytest.raises(ConfigurationError):
            RigidTransform(np.eye(2), np.zeros(3))


class TestRigidAlign:
    def test_recovers_known_transform(self, rng):
        source = rng.standard_normal((20, 2))
        angle = 0.9
        c, s = np.cos(angle), np.sin(angle)
        rotation = np.array([[c, -s], [s, c]])
        translation = np.array([3.0, -2.0])
        target = source @ rotation.T + translation

        transform = rigid_align(source, target)
        assert transform.angle == pytest.approx(angle)
        assert transform.translation == pytest.approx(translation)
        assert transform.apply(source) == pytest.approx(target)

    def test_no_reflection(self):
        # A mirrored point set cannot be matched by a proper rotation; the
        # result must still be a rotation (det +1), not a reflection.
        source = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        target = source * np.array([1.0, -1.0])
        transform = rigid_align(source, target)
        assert np.linalg.det(transform.rotation) == pytest.approx(1.0)

    def test_no_scaling(self):
        source = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        target = 3.0 * source
        transform = rigid_align(source, target)
        # Rotation matrix columns stay unit length: scale is not absorbed.
        assert np.linalg.norm(transform.rotation[:, 0]) == pytest.approx(1.0)

    def test_rejects_mismatched_inputs(self):
        with pytest.raises(ConfigurationError):
            rigid_align(np.zeros((3, 2)), np.zeros((4, 2)))

    def test_rejects_single_point(self):
        with pytest.raises(ConfigurationError):
            rigid_align(np.zeros((1, 2)), np.zeros((1, 2)))


class TestRectangle:
    def test_from_size(self):
        rect = Rectangle.from_size(4.0, 3.0, origin=(1.0, 2.0))
        assert rect.x_max == pytest.approx(5.0)
        assert rect.y_max == pytest.approx(5.0)
        assert rect.area == pytest.approx(12.0)
        assert rect.center == pytest.approx([3.0, 3.5])

    def test_rejects_degenerate(self):
        with pytest.raises(ConfigurationError):
            Rectangle(0, 0, 0, 1)

    def test_contains_with_margin(self):
        rect = Rectangle.from_size(10.0, 10.0)
        assert rect.contains((0.5, 0.5))
        assert not rect.contains((0.5, 0.5), margin=1.0)

    def test_contains_all(self):
        rect = Rectangle.from_size(10.0, 10.0)
        inside = np.array([[1.0, 1.0], [9.0, 9.0]])
        outside = np.array([[1.0, 1.0], [11.0, 5.0]])
        assert rect.contains_all(inside)
        assert not rect.contains_all(outside)

    def test_clamp(self):
        rect = Rectangle.from_size(10.0, 10.0)
        assert rect.clamp((-5.0, 20.0)) == pytest.approx([0.0, 10.0])
        assert rect.clamp((5.0, 5.0)) == pytest.approx([5.0, 5.0])

    def test_sample_interior_stays_inside(self, rng):
        rect = Rectangle.from_size(4.0, 2.0, origin=(-1.0, -1.0))
        for _ in range(50):
            point = rect.sample_interior(rng, margin=0.2)
            assert rect.contains(point, margin=0.19)
