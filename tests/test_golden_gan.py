"""Golden regression digests for GAN training steps, per backend × dtype.

Same contract as the range-angle/tracker digests: a short fixed-seed
training run's loss trajectory is pinned against a checked-in fixture.
Any change to the autograd engine, the sequence kernels, the dtype policy,
or the trainer that moves these numbers must be deliberate — regenerate
with::

    PYTHONPATH=src python tests/test_golden_gan.py

and review the fixture diff like any other code change.

float64 runs are pinned tightly (the only freedom is summation order);
float32 runs get a loose tolerance because every intermediate rounds and
BLAS kernels differ across machines — the digest still catches real
regressions (wrong math changes losses at the first digit, not the
fourth).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.gan.trainer import GanConfig, GanTrainer
from repro.nn import dtype_scope, sequence_backend_scope
from repro.trajectories import HumanMotionSimulator

GOLDEN_PATH = (Path(__file__).resolve().parent
               / "fixtures" / "golden" / "gan_digests.json")

#: (backend, dtype) -> relative tolerance for the stored loss trajectory.
CONFIGS: dict[tuple[str, str], float] = {
    ("naive", "float64"): 1e-7,
    ("fused", "float64"): 1e-7,
    ("naive", "float32"): 5e-2,
    ("fused", "float32"): 5e-2,
}


def compute_digest(backend: str, dtype: str) -> dict[str, list[float]]:
    """One short fixed-seed training run (3 optimizer steps per network)."""
    dataset = HumanMotionSimulator(
        rng=np.random.default_rng(3), num_points=16
    ).build_dataset(48)
    config = GanConfig(noise_dim=6, hidden_size=10, embed_dim=4,
                       feature_dim=8, batch_size=16, epochs=1,
                       dropout_probability=0.0, seed=1)
    with dtype_scope(dtype), sequence_backend_scope(backend):
        trainer = GanTrainer(dataset, config)
        history = trainer.train(epochs=1)
    return {
        "discriminator_losses": [float(v) for v in history.discriminator_losses],
        "generator_losses": [float(v) for v in history.generator_losses],
        "real_scores": [float(v) for v in history.real_scores],
        "fake_scores": [float(v) for v in history.fake_scores],
    }


def _key(backend: str, dtype: str) -> str:
    return f"{backend}.{dtype}"


@pytest.fixture(scope="module")
def golden() -> dict[str, dict[str, list[float]]]:
    if not GOLDEN_PATH.exists():
        pytest.fail("GAN golden fixture missing; regenerate via "
                    "PYTHONPATH=src python tests/test_golden_gan.py")
    with GOLDEN_PATH.open(encoding="utf-8") as handle:
        return json.load(handle)


@pytest.mark.parametrize("backend,dtype", sorted(CONFIGS))
def test_gan_step_digest_matches_golden(golden, backend, dtype):
    stored = golden.get(_key(backend, dtype))
    assert stored is not None, f"no golden entry for {backend}/{dtype}"
    actual = compute_digest(backend, dtype)
    tolerance = CONFIGS[(backend, dtype)]
    assert sorted(actual) == sorted(stored)
    for series, values in actual.items():
        np.testing.assert_allclose(
            values, stored[series], rtol=tolerance, atol=tolerance,
            err_msg=f"{backend}/{dtype} {series} drifted from golden",
        )


def test_backends_agree_at_float64():
    """The two backends are the same algorithm: trajectories must track."""
    naive = compute_digest("naive", "float64")
    fused = compute_digest("fused", "float64")
    for series in naive:
        np.testing.assert_allclose(
            fused[series], naive[series], rtol=1e-4, atol=1e-4,
            err_msg=f"fused/naive float64 divergence in {series}",
        )


if __name__ == "__main__":  # pragma: no cover - regeneration entry point
    digests = {
        _key(backend, dtype): compute_digest(backend, dtype)
        for backend, dtype in sorted(CONFIGS)
    }
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    with GOLDEN_PATH.open("w", encoding="utf-8") as handle:
        json.dump(digests, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {GOLDEN_PATH}")
