"""Golden regression suite: checked-in digests of the range-angle cubes.

The equivalence suites pin the backends against *each other*; this suite
pins them against *history*. One FMCW scene and one pulsed scene are
sensed per backend and summarized into a small digest (shapes, cube
statistics, probe cells, raw-profile mass) that is compared against the
checked-in fixture at tight relative tolerance. Any numerical drift in
the stage-graph kernels — a reordered reduction, a changed crop, a new
window — shows up here even if both backends drift together.

Regenerate after an *intentional* change with::

    PYTHONPATH=src python tests/test_golden_regression.py

and review the fixture diff like any other code change.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.geometry import Rectangle
from repro.radar import (
    FmcwRadar,
    PulsedRadar,
    PulsedRadarConfig,
    RadarConfig,
    Scene,
)
from repro.signal.chirp import ChirpConfig
from repro.types import Trajectory

GOLDEN_PATH = (Path(__file__).resolve().parent
               / "fixtures" / "golden" / "range_angle_digests.json")
TRACKER_GOLDEN_PATH = (Path(__file__).resolve().parent
                       / "fixtures" / "golden" / "tracker_digests.json")

RTOL = 1e-7

BACKENDS = ("naive", "vectorized")

#: Probe cells as fractional (frame, bin, angle) coordinates, scaled to
#: each cube's shape so the digest stays shape-agnostic.
PROBE_FRACTIONS = (
    (0.0, 0.0, 0.0),
    (0.0, 0.5, 0.5),
    (0.25, 0.33, 0.66),
    (0.5, 0.1, 0.9),
    (0.5, 0.75, 0.25),
    (0.75, 0.9, 0.1),
    (1.0, 0.5, 0.5),
    (1.0, 1.0, 1.0),
)


def fmcw_scene() -> Scene:
    room = Rectangle(0.0, 0.0, 8.0, 6.0)
    scene = Scene(room)
    scene.add_static((2.0, 3.0))
    scene.add_static((6.0, 4.5), rcs=0.5)
    walk = Trajectory(np.linspace([2.0, 2.0], [5.5, 4.0], 40), dt=0.1)
    scene.add_human(walk)
    return scene


def pulsed_scene() -> Scene:
    room = Rectangle(0.0, 0.0, 8.0, 6.0)
    scene = Scene(room)
    scene.add_static((5.5, 2.5))
    walk = Trajectory(np.linspace([2.5, 4.5], [5.0, 2.0], 40), dt=0.1)
    scene.add_human(walk)
    return scene


def sense_fmcw(backend: str):
    radar = FmcwRadar(RadarConfig(chirp=ChirpConfig(duration=6.4e-5)))
    rng = np.random.default_rng(2022)
    return radar.sense(fmcw_scene(), 1.2, rng=rng,
                       synth=backend, pipeline=backend)


def sense_pulsed(backend: str):
    radar = PulsedRadar(PulsedRadarConfig(sample_rate=2.5e9,
                                          bandwidth=1.0e9,
                                          max_range=12.0))
    rng = np.random.default_rng(1337)
    return radar.sense(pulsed_scene(), 1.2, rng=rng, pipeline=backend)


def digest(result) -> dict:
    """Summary statistics of a sensing result's range-angle cube."""
    cube = np.stack([profile.power for profile in result.profiles])
    num_frames, num_bins, num_angles = cube.shape
    probes = {}
    for frac_frame, frac_bin, frac_angle in PROBE_FRACTIONS:
        index = (round(frac_frame * (num_frames - 1)),
                 round(frac_bin * (num_bins - 1)),
                 round(frac_angle * (num_angles - 1)))
        probes["/".join(map(str, index))] = float(cube[index])
    raw = result.raw_profiles
    return {
        "cube_shape": list(cube.shape),
        "cube_sum": float(cube.sum()),
        "cube_max": float(cube.max()),
        "cube_argmax": int(cube.argmax()),
        "probes": probes,
        "ranges_first": float(result.profiles[0].ranges[0]),
        "ranges_last": float(result.profiles[0].ranges[-1]),
        "raw_abs_sum": float(np.abs(raw).sum()),
        "raw_shape": list(raw.shape),
    }


def tracker_digest(result) -> dict:
    """Track-level summary: stable IDs, lifecycles, trajectory mass.

    Computed through the *streaming* tracker (``stream_tracks``) so the
    digest also guards the incremental path; streaming≡batch equality is
    separately pinned by ``tests/test_property_tracker.py``.
    """
    tracks = result.stream_tracks().tracks()
    track_entries = []
    for track in tracks:
        positions = np.vstack(track.raw_positions)
        trajectory = track.to_trajectory()
        track_entries.append({
            "track_id": track.track_id,
            "num_points": len(track),
            "age": track.age,
            "misses": track.misses,
            "total_misses": track.total_misses,
            "first_time": float(track.times[0]),
            "last_time": float(track.times[-1]),
            "first_position": [float(x) for x in positions[0]],
            "last_position": [float(x) for x in positions[-1]],
            "position_sum": [float(x) for x in positions.sum(axis=0)],
            "total_power": track.total_power,
            "trajectory_points": len(trajectory),
            "trajectory_sum": [
                float(x) for x in trajectory.points.sum(axis=0)
            ],
        })
    return {"num_tracks": len(tracks), "tracks": track_entries}


def compute_digests() -> dict:
    return {
        "fmcw": {backend: digest(sense_fmcw(backend))
                 for backend in BACKENDS},
        "pulsed": {backend: digest(sense_pulsed(backend))
                   for backend in BACKENDS},
    }


def compute_tracker_digests() -> dict:
    return {
        "fmcw": {backend: tracker_digest(sense_fmcw(backend))
                 for backend in BACKENDS},
        "pulsed": {backend: tracker_digest(sense_pulsed(backend))
                   for backend in BACKENDS},
    }


@pytest.fixture(scope="module")
def golden() -> dict:
    if not GOLDEN_PATH.exists():  # pragma: no cover - regeneration aid
        pytest.fail(f"golden fixture missing; regenerate via "
                    f"PYTHONPATH=src python {Path(__file__).name}")
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


@pytest.fixture(scope="module")
def golden_tracker() -> dict:
    if not TRACKER_GOLDEN_PATH.exists():  # pragma: no cover - regen aid
        pytest.fail(f"tracker golden fixture missing; regenerate via "
                    f"PYTHONPATH=src python {Path(__file__).name}")
    return json.loads(TRACKER_GOLDEN_PATH.read_text(encoding="utf-8"))


def assert_digest_matches(actual: dict, expected: dict) -> None:
    assert actual.keys() == expected.keys()
    assert actual["cube_shape"] == expected["cube_shape"]
    assert actual["raw_shape"] == expected["raw_shape"]
    assert actual["cube_argmax"] == expected["cube_argmax"]
    for key in ("cube_sum", "cube_max", "ranges_first", "ranges_last",
                "raw_abs_sum"):
        np.testing.assert_allclose(actual[key], expected[key], rtol=RTOL,
                                   err_msg=key)
    assert actual["probes"].keys() == expected["probes"].keys()
    for cell, value in expected["probes"].items():
        np.testing.assert_allclose(actual["probes"][cell], value, rtol=RTOL,
                                   err_msg=f"probe {cell}")


@pytest.mark.parametrize("backend", BACKENDS)
class TestGoldenDigests:
    def test_fmcw_matches_golden(self, golden, backend):
        assert_digest_matches(digest(sense_fmcw(backend)),
                              golden["fmcw"][backend])

    def test_pulsed_matches_golden(self, golden, backend):
        assert_digest_matches(digest(sense_pulsed(backend)),
                              golden["pulsed"][backend])


def assert_tracker_digest_matches(actual: dict, expected: dict) -> None:
    assert actual["num_tracks"] == expected["num_tracks"]
    for track, ref in zip(actual["tracks"], expected["tracks"]):
        for key in ("track_id", "num_points", "age", "misses",
                    "total_misses", "trajectory_points"):
            assert track[key] == ref[key], key
        for key in ("first_time", "last_time", "total_power"):
            np.testing.assert_allclose(track[key], ref[key], rtol=RTOL,
                                       err_msg=key)
        for key in ("first_position", "last_position", "position_sum",
                    "trajectory_sum"):
            np.testing.assert_allclose(track[key], ref[key], rtol=RTOL,
                                       err_msg=key)


@pytest.mark.parametrize("backend", BACKENDS)
class TestGoldenTrackerDigests:
    """History-pinned tracker output: IDs, lifecycles, trajectories."""

    def test_fmcw_tracks_match_golden(self, golden_tracker, backend):
        assert_tracker_digest_matches(tracker_digest(sense_fmcw(backend)),
                                      golden_tracker["fmcw"][backend])

    def test_pulsed_tracks_match_golden(self, golden_tracker, backend):
        assert_tracker_digest_matches(tracker_digest(sense_pulsed(backend)),
                                      golden_tracker["pulsed"][backend])


class TestGoldenInternalConsistency:
    def test_backends_agree_with_each_other(self, golden):
        """The checked-in digests themselves must be cross-backend equal."""
        for radar_kind, per_backend in golden.items():
            naive, vectorized = (per_backend["naive"],
                                 per_backend["vectorized"])
            assert naive["cube_shape"] == vectorized["cube_shape"], radar_kind
            np.testing.assert_allclose(naive["cube_sum"],
                                       vectorized["cube_sum"], rtol=1e-6,
                                       err_msg=radar_kind)


if __name__ == "__main__":  # pragma: no cover - regeneration entry point
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(compute_digests(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {GOLDEN_PATH}")
    TRACKER_GOLDEN_PATH.write_text(
        json.dumps(compute_tracker_digests(), indent=2, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )
    print(f"wrote {TRACKER_GOLDEN_PATH}")
