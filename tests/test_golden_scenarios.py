"""Golden digests for every registered scenario.

PR 5's golden machinery pinned two hand-built scenes against history;
this suite extends that coverage to the scenario registry: every
registered spec is built (default seed), sensed by its primary radar on
the short golden chirp, and summarized with the same digest the
range-angle suite uses. Registering a scenario without regenerating the
fixture fails the coverage test, so the catalog and its digests can
never drift apart.

Regenerate after an *intentional* change with::

    PYTHONPATH=src python tests/test_golden_scenarios.py

and review the fixture diff like any other code change.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np
import pytest

from repro.radar import FmcwRadar
from repro.scenarios import build, scenario_names
from repro.signal.chirp import ChirpConfig

try:
    from tests.test_golden_regression import (
        RTOL,
        assert_digest_matches,
        digest,
    )
except ModuleNotFoundError:  # direct `python tests/test_golden_scenarios.py`
    import sys

    sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
    from tests.test_golden_regression import (
        RTOL,
        assert_digest_matches,
        digest,
    )

SCENARIO_GOLDEN_PATH = (Path(__file__).resolve().parent
                        / "fixtures" / "golden" / "scenario_digests.json")

#: Same fast chirp as the range-angle golden suite; short sense span
#: keeps the whole catalog sweep seconds-scale.
GOLDEN_CHIRP_DURATION_S = 6.4e-5
GOLDEN_SENSE_DURATION_S = 0.8
GOLDEN_SENSE_SEED = 2022

assert RTOL  # re-exported tolerance; keeps the import explicit


def sense_scenario(name: str):
    """Build a registered scenario and sense it with its primary radar."""
    built = build(name)
    scene = built.build_scene()
    config = dataclasses.replace(
        built.radar_configs[0],
        chirp=ChirpConfig(duration=GOLDEN_CHIRP_DURATION_S),
    )
    rng = np.random.default_rng(GOLDEN_SENSE_SEED)
    return FmcwRadar(config).sense(scene, GOLDEN_SENSE_DURATION_S, rng=rng)


def compute_scenario_digests() -> dict:
    return {name: digest(sense_scenario(name)) for name in scenario_names()}


@pytest.fixture(scope="module")
def golden_scenarios() -> dict:
    if not SCENARIO_GOLDEN_PATH.exists():  # pragma: no cover - regen aid
        pytest.fail(f"scenario golden fixture missing; regenerate via "
                    f"PYTHONPATH=src python {Path(__file__).name}")
    return json.loads(SCENARIO_GOLDEN_PATH.read_text(encoding="utf-8"))


def test_every_registered_scenario_has_a_digest(golden_scenarios):
    """Coverage gate: catalog and fixture must name the same scenarios."""
    assert sorted(golden_scenarios) == list(scenario_names())


@pytest.mark.parametrize("name", scenario_names())
def test_scenario_matches_golden(golden_scenarios, name):
    assert_digest_matches(digest(sense_scenario(name)),
                          golden_scenarios[name])


if __name__ == "__main__":  # pragma: no cover - regeneration entry point
    SCENARIO_GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    SCENARIO_GOLDEN_PATH.write_text(
        json.dumps(compute_scenario_digests(), indent=2, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )
    print(f"wrote {SCENARIO_GOLDEN_PATH}")
