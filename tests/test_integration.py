"""Cross-module integration tests: the full RF-Protect loop.

These exercise the complete chain — motion/GAN -> controller -> tag ->
radar frontend -> processing -> tracking -> metrics — asserting the
system-level claims the paper makes, at small scale.
"""

import numpy as np
import pytest

from repro.eavesdropper import count_occupants, filter_ghost_trajectories
from repro.experiments.environments import home_environment, office_environment
from repro.metrics.alignment import spoofing_errors
from repro.metrics.fid import trajectory_features
from repro.trajectories import HumanMotionSimulator
from repro.types import Trajectory


@pytest.fixture(scope="module")
def shared_rng():
    return np.random.default_rng(2024)


class TestGhostInjection:
    """Sec. 5: the reflector creates trackable, accurate fake humans."""

    @pytest.fixture(scope="class")
    def spoofed_session(self):
        environment = office_environment()
        rng = np.random.default_rng(42)
        simulator = HumanMotionSimulator(rng=rng)
        controller = environment.make_controller()
        shape = simulator.sample_trajectory(profile_index=2).centered()
        placed = controller.place_trajectory(shape)
        schedule = controller.plan_trajectory(placed)
        tag = environment.make_tag()
        tag.deploy(schedule)
        scene = environment.make_scene()
        scene.add(tag)
        radar = environment.make_radar()
        result = radar.sense(scene, 10.0, rng=rng)
        return environment, schedule, result

    def test_empty_room_appears_occupied(self, spoofed_session):
        _env, _schedule, result = spoofed_session
        assert len(result.tracks()) >= 1

    def test_ghost_matches_intent_modulo_rigid(self, spoofed_session):
        environment, schedule, result = spoofed_session
        errors = spoofing_errors(result.trajectories()[0],
                                 schedule.intended_trajectory(),
                                 environment.radar_position)
        medians = errors.medians()
        assert medians["location_m"] < 0.35
        assert medians["angle_deg"] < 8.0
        # Distance accuracy within ~1 range bin, like the paper (Sec 11.1).
        resolution = environment.radar_config.chirp.range_resolution
        assert medians["distance_m"] < 1.5 * resolution

    def test_ghost_kinematics_look_human(self, spoofed_session):
        _env, _schedule, result = spoofed_session
        tracked = result.trajectories()[0]
        features = trajectory_features(tracked)
        assert np.all(np.isfinite(features))
        speeds = tracked.speeds()
        assert speeds.max() < 3.0  # no superhuman motion artifacts


class TestMixedScene:
    """Sec. 7: phantoms corrupt counting; Sec. 11.3: legit sensing works."""

    @pytest.fixture(scope="class")
    def mixed_session(self):
        environment = home_environment()
        rng = np.random.default_rng(7)
        controller = environment.make_controller()
        simulator = HumanMotionSimulator(rng=rng)

        human = Trajectory(
            np.linspace(environment.room.center + np.array([-4.0, 0.5]),
                        environment.room.center + np.array([-1.0, 2.0]), 50),
            dt=10.0 / 49.0,
        )
        shape = simulator.sample_trajectory(profile_index=1).centered()
        placed = controller.place_trajectory(shape)
        schedule = controller.plan_trajectory(placed)
        tag = environment.make_tag()
        tag.deploy(schedule)

        scene = environment.make_scene()
        scene.add_human(human)
        scene.add(tag)
        radar = environment.make_radar()
        result = radar.sense(scene, 10.0, rng=rng)
        return environment, human, tag, result

    def test_eavesdropper_overcounts(self, mixed_session):
        _env, _human, _tag, result = mixed_session
        assert count_occupants(result) >= 2  # truth is 1

    def test_legitimate_sensor_recovers_truth(self, mixed_session):
        _env, human, tag, result = mixed_session
        sensed = result.trajectories()[:2]
        real, matches = filter_ghost_trajectories(sensed, tag.ghost_reports())
        assert len(matches) == 1
        assert len(real) == 1
        # The surviving trajectory is the human's, not the ghost's.
        recovered_centroid = real[0].centroid()
        assert np.linalg.norm(recovered_centroid - human.centroid()) < 1.0


class TestDefenseRobustness:
    """Sec. 12's detectability argument: the tag is passive."""

    def test_tag_silent_when_radar_off(self, shared_rng):
        # When the schedule has no active command (radar observing outside
        # the spoofing window), the tag contributes nothing: it only ever
        # re-radiates the radar's own signal.
        environment = office_environment()
        controller = environment.make_controller()
        simulator = HumanMotionSimulator(rng=shared_rng)
        shape = simulator.sample_trajectory(profile_index=1).centered()
        placed = controller.place_trajectory(shape)
        schedule = controller.plan_trajectory(placed, start_time=100.0)
        tag = environment.make_tag()
        tag.deploy(schedule)
        components = tag.path_components(
            0.0, environment.make_radar().array,
            environment.make_channel(), shared_rng,
        )
        assert components == []

    def test_multiple_ghosts_from_one_tag(self, shared_rng):
        environment = home_environment()
        controller = environment.make_controller()
        simulator = HumanMotionSimulator(rng=shared_rng)
        tag = environment.make_tag()
        for center_range in (4.0, 6.0):
            shape = simulator.sample_trajectory(profile_index=1).centered()
            placed = controller.place_trajectory(shape,
                                                 center_range=center_range)
            tag.deploy(controller.plan_trajectory(placed))
        scene = environment.make_scene()
        scene.add(tag)
        result = environment.make_radar().sense(scene, 8.0, rng=shared_rng)
        assert count_occupants(result) >= 2
