"""Tests for repro.metrics: FID, alignment errors, CDFs, statistics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gan import random_motion_baseline, uniform_linear_motion_baseline
from repro.metrics import (
    aligned_trajectory,
    chi_square_independence,
    empirical_cdf,
    fid_score,
    frechet_distance,
    ks_two_sample,
    median_and_percentiles,
    normalized_fid_scores,
    spoofing_errors,
    trajectory_features,
)
from repro.trajectories import HumanMotionSimulator, TrajectoryDataset
from repro.types import Trajectory


class TestTrajectoryFeatures:
    def test_feature_vector_size(self, sample_trajectory):
        features = trajectory_features(sample_trajectory)
        assert features.shape == (12,)
        assert np.all(np.isfinite(features))

    def test_translation_invariant(self, sample_trajectory):
        moved = sample_trajectory.translated([100.0, -50.0])
        assert trajectory_features(moved) == pytest.approx(
            trajectory_features(sample_trajectory)
        )

    def test_rotation_invariant(self, sample_trajectory):
        rotated = sample_trajectory.rotated(1.3)
        assert trajectory_features(rotated) == pytest.approx(
            trajectory_features(sample_trajectory), abs=1e-9
        )

    def test_straight_line_straightness_one(self):
        line = Trajectory(np.linspace([0, 0], [5, 0], 20), dt=0.5)
        features = trajectory_features(line)
        assert features[8] == pytest.approx(1.0)  # straightness index

    def test_rejects_too_short(self):
        with pytest.raises(ConfigurationError):
            trajectory_features(Trajectory([[0, 0], [1, 1]], dt=1.0))


class TestFrechetDistance:
    def test_identical_gaussians_zero(self):
        mean = np.array([1.0, 2.0])
        cov = np.array([[2.0, 0.3], [0.3, 1.0]])
        assert frechet_distance(mean, cov, mean, cov) == pytest.approx(
            0.0, abs=1e-6
        )

    def test_mean_shift_term(self):
        cov = np.eye(2)
        distance = frechet_distance(np.zeros(2), cov, np.array([3.0, 4.0]), cov)
        assert distance == pytest.approx(25.0, abs=1e-6)

    def test_symmetric(self, rng):
        mean_a, mean_b = rng.standard_normal(3), rng.standard_normal(3)
        a = rng.standard_normal((10, 3))
        b = rng.standard_normal((10, 3))
        cov_a, cov_b = np.cov(a, rowvar=False), np.cov(b, rowvar=False)
        forward = frechet_distance(mean_a, cov_a, mean_b, cov_b)
        backward = frechet_distance(mean_b, cov_b, mean_a, cov_a)
        assert forward == pytest.approx(backward, rel=1e-6)

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ConfigurationError):
            frechet_distance(np.zeros(2), np.eye(2), np.zeros(3), np.eye(3))


class TestFidScore:
    def _real(self, count=60, seed=0):
        simulator = HumanMotionSimulator(rng=np.random.default_rng(seed))
        return simulator.build_dataset(count)

    def test_self_fid_small(self, rng):
        real = self._real(80)
        half_a, half_b = real.split(0.5, rng)
        self_fid = fid_score(half_a, half_b)
        random_fid = fid_score(
            random_motion_baseline(40, rng, step_scale=0.3), half_b
        )
        assert self_fid < random_fid / 5

    def test_fig12_ordering_for_baselines(self, rng):
        """Random motion must look far worse than constant-speed lines."""
        real = self._real(80)
        ulm = uniform_linear_motion_baseline(40, rng)
        random = random_motion_baseline(40, rng, step_scale=real.step_scale())
        assert fid_score(ulm, real) < fid_score(random, real)

    def test_normalized_scores_real_is_one(self, rng):
        real = self._real(60)
        candidates = {"ULM": uniform_linear_motion_baseline(30, rng)}
        scores = normalized_fid_scores(candidates, real, rng)
        assert scores["Real"] == 1.0
        assert scores["ULM"] > 1.0

    def test_rejects_tiny_sets(self, rng):
        real = self._real(6)
        with pytest.raises(ConfigurationError):
            normalized_fid_scores({}, real, rng)


class TestAlignment:
    def test_aligned_trajectory_removes_rigid_motion(self, sample_trajectory):
        transformed = sample_trajectory.rotated(0.8).translated([3.0, -1.0])
        aligned, reference = aligned_trajectory(transformed,
                                                sample_trajectory)
        residual = np.linalg.norm(aligned.points - reference.points, axis=1)
        assert residual.max() == pytest.approx(0.0, abs=1e-9)

    def test_resamples_to_common_length(self, sample_trajectory):
        short = sample_trajectory.resampled(20)
        aligned, reference = aligned_trajectory(short, sample_trajectory)
        assert len(aligned) == len(reference) == 20

    def test_scale_error_not_absorbed(self, sample_trajectory):
        scaled = sample_trajectory.centered().scaled(1.5)
        aligned, reference = aligned_trajectory(
            scaled, sample_trajectory.centered()
        )
        residual = np.linalg.norm(aligned.points - reference.points, axis=1)
        assert residual.max() > 0.01


class TestSpoofingErrors:
    def test_perfect_spoof_zero_errors(self, sample_trajectory):
        radar = np.array([0.0, -3.0])
        errors = spoofing_errors(sample_trajectory, sample_trajectory, radar)
        assert errors.location_errors.max() == pytest.approx(0.0, abs=1e-9)
        assert errors.distance_errors.max() == pytest.approx(0.0, abs=1e-9)
        assert errors.angle_errors.max() == pytest.approx(0.0, abs=1e-9)

    def test_rigid_offset_forgiven(self, sample_trajectory):
        radar = np.array([0.0, -3.0])
        moved = sample_trajectory.rotated(0.4).translated([1.0, 2.0])
        errors = spoofing_errors(moved, sample_trajectory, radar)
        assert np.median(errors.location_errors) == pytest.approx(0.0,
                                                                  abs=1e-9)

    def test_noise_shows_up(self, sample_trajectory, rng):
        radar = np.array([0.0, -3.0])
        noisy = sample_trajectory.replace(
            points=sample_trajectory.points + rng.normal(0, 0.1, (50, 2))
        )
        errors = spoofing_errors(noisy, sample_trajectory, radar)
        medians = errors.medians()
        assert 0.01 < medians["location_m"] < 0.5
        assert medians["angle_deg"] > 0.0

    def test_rejects_bad_radar_position(self, sample_trajectory):
        with pytest.raises(ConfigurationError):
            spoofing_errors(sample_trajectory, sample_trajectory,
                            np.zeros(3))


class TestEmpiricalCdf:
    def test_levels_reach_one(self):
        values, levels = empirical_cdf(np.array([3.0, 1.0, 2.0]))
        assert values == pytest.approx([1.0, 2.0, 3.0])
        assert levels == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_median_readable_from_cdf(self, rng):
        sample = rng.normal(5.0, 1.0, 1001)
        values, levels = empirical_cdf(sample)
        median = values[np.searchsorted(levels, 0.5)]
        assert median == pytest.approx(np.median(sample), abs=0.02)

    def test_rejects_empty_and_nan(self):
        with pytest.raises(ConfigurationError):
            empirical_cdf(np.array([]))
        with pytest.raises(ConfigurationError):
            empirical_cdf(np.array([1.0, np.nan]))

    def test_percentile_summary(self):
        summary = median_and_percentiles(np.arange(101.0))
        assert summary["p50"] == pytest.approx(50.0)
        assert summary["p90"] == pytest.approx(90.0)

    def test_percentile_validation(self):
        with pytest.raises(ConfigurationError):
            median_and_percentiles(np.array([1.0]), percentiles=(150.0,))


class TestChiSquare:
    def test_independent_table_not_significant(self):
        # Perfectly proportional rows: chi2 = 0.
        table = np.array([[50, 50], [30, 30]])
        result = chi_square_independence(table)
        assert result.statistic == pytest.approx(0.0)
        assert result.p_value == pytest.approx(1.0)
        assert not result.significant()

    def test_dependent_table_significant(self):
        table = np.array([[90, 10], [10, 90]])
        result = chi_square_independence(table)
        assert result.significant()
        assert result.degrees_of_freedom == 1

    def test_matches_paper_scale(self):
        # Table 1 of the paper: chi2 ~ 0.2, p ~ 0.65.
        table = np.array([[93, 89], [67, 71]])
        result = chi_square_independence(table)
        assert result.statistic == pytest.approx(0.2, abs=0.05)
        assert result.p_value == pytest.approx(0.65, abs=0.05)

    def test_rejects_bad_tables(self):
        with pytest.raises(ConfigurationError):
            chi_square_independence(np.array([[1, 2]]))
        with pytest.raises(ConfigurationError):
            chi_square_independence(np.array([[1, -2], [3, 4]]))
        with pytest.raises(ConfigurationError):
            chi_square_independence(np.zeros((2, 2)))


class TestKsTest:
    def test_same_distribution_high_p(self, rng):
        a = rng.normal(0, 1, 500)
        b = rng.normal(0, 1, 500)
        assert ks_two_sample(a, b).p_value > 0.01

    def test_different_distributions_low_p(self, rng):
        a = rng.normal(0, 1, 500)
        b = rng.normal(2, 1, 500)
        assert ks_two_sample(a, b).p_value < 1e-6

    def test_rejects_tiny_samples(self):
        with pytest.raises(ConfigurationError):
            ks_two_sample(np.array([1.0]), np.array([1.0, 2.0]))
