"""Unit tests for the float32/float64 dtype policy in ``repro.nn``.

The policy contract: leaf tensors adopt the active default dtype, graph
nodes keep whatever dtype numpy computed, explicit ``dtype=`` always wins,
and python scalars in arithmetic adopt the partner tensor's dtype so a
float32 graph is never silently widened by ``x * 2.0``. Initializers,
optimizers, serialization, and the GAN trainer must all follow the policy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GradientError
from repro.nn import (
    Adam,
    BiLSTM,
    LSTM,
    SGD,
    Tensor,
    default_dtype,
    dtype_scope,
    load_state,
    save_state,
    set_default_dtype,
)
from repro.nn import init
from repro.nn.layers import Linear
from repro.nn.tensor import as_tensor, resolve_dtype


class TestPolicyMachinery:
    def test_default_is_float64(self):
        assert default_dtype() == np.float64

    def test_dtype_scope_restores_previous(self):
        before = default_dtype()
        with dtype_scope("float32") as active:
            assert active == np.float32
            assert default_dtype() == np.float32
        assert default_dtype() == before

    def test_set_default_dtype_returns_previous(self):
        previous = set_default_dtype("float32")
        try:
            assert previous == np.float64
            assert default_dtype() == np.float32
        finally:
            set_default_dtype(previous)

    def test_resolve_rejects_unsupported_dtypes(self):
        for bad in ("float16", "int64", "complex128"):
            with pytest.raises(GradientError):
                resolve_dtype(bad)

    def test_resolve_none_is_the_policy(self):
        with dtype_scope("float32"):
            assert resolve_dtype(None) == np.float32


class TestTensorDtype:
    def test_leaves_follow_policy(self):
        with dtype_scope("float32"):
            assert Tensor([1.0, 2.0]).dtype == np.float32
        assert Tensor([1.0, 2.0]).dtype == np.float64

    def test_explicit_dtype_wins_over_policy(self):
        with dtype_scope("float32"):
            assert Tensor([1.0], dtype="float64").dtype == np.float64
        assert Tensor([1.0], dtype=np.float32).dtype == np.float32

    def test_scalar_arithmetic_preserves_float32(self):
        x = Tensor(np.ones(3, dtype=np.float32), dtype="float32")
        for result in (x * 2.0, x + 1.0, 1.0 - x, x / 2.0, 2.0 / x,
                       x.mean(), x.sum()):
            assert result.dtype == np.float32, result._op

    def test_as_tensor_scalar_adopts_partner_dtype(self):
        like = Tensor(np.zeros(2, dtype=np.float32), dtype="float32")
        assert as_tensor(3.0, like=like).dtype == np.float32
        assert as_tensor(3.0).dtype == default_dtype()

    def test_backward_seed_matches_tensor_dtype(self):
        x = Tensor(np.ones(3, dtype=np.float32), dtype="float32",
                   requires_grad=True)
        x.sum().backward()
        assert x.grad is not None
        assert x.grad.dtype == np.float32

    def test_astype_is_differentiable_and_casts_gradient_back(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x.astype("float32")
        assert y.dtype == np.float32
        y.sum().backward()
        assert x.grad is not None
        assert x.grad.dtype == np.float64

    def test_detach_preserves_dtype(self):
        x = Tensor(np.ones(3, dtype=np.float32), dtype="float32")
        assert x.detach().dtype == np.float32


class TestInitializers:
    def test_initializers_follow_policy(self):
        rng = np.random.default_rng(0)
        with dtype_scope("float32"):
            assert init.xavier_uniform((3, 4), rng).dtype == np.float32
            assert init.uniform((3,), rng).dtype == np.float32
            assert init.zeros((3,)).dtype == np.float32
            assert init.orthogonal((3, 3), rng).dtype == np.float32

    def test_explicit_dtype_overrides_policy(self):
        rng = np.random.default_rng(0)
        with dtype_scope("float32"):
            assert init.zeros((2,), dtype="float64").dtype == np.float64
            assert init.xavier_uniform((2, 2), rng,
                                       dtype="float64").dtype == np.float64

    def test_float32_draw_is_cast_of_float64_draw(self):
        """Same RNG stream: float32 weights == float64 weights cast down."""
        w64 = init.xavier_uniform((4, 5), np.random.default_rng(7),
                                  dtype="float64")
        w32 = init.xavier_uniform((4, 5), np.random.default_rng(7),
                                  dtype="float32")
        np.testing.assert_array_equal(w32, w64.astype(np.float32))


class TestOptimizers:
    def _param(self):
        p = Tensor(np.ones(3, dtype=np.float32), dtype="float32",
                   requires_grad=True)
        p.grad = np.ones(3, dtype=np.float32)
        return p

    def test_sgd_state_and_update_stay_float32(self):
        p = self._param()
        opt = SGD([p], learning_rate=0.1, momentum=0.9)
        opt.step()
        assert opt._velocity[0].dtype == np.float32
        assert p.data.dtype == np.float32

    def test_adam_state_and_update_stay_float32(self):
        p = self._param()
        opt = Adam([p], learning_rate=0.1)
        opt.step()
        assert opt._first_moment[0].dtype == np.float32
        assert opt._second_moment[0].dtype == np.float32
        assert p.data.dtype == np.float32

    def test_clip_gradients_preserves_dtype(self):
        p = self._param()
        p.grad *= 100.0
        Adam([p], learning_rate=0.1).clip_gradients(1.0)
        assert p.grad.dtype == np.float32


class TestModulesAndSerialization:
    def test_linear_and_lstm_parameters_follow_policy(self):
        with dtype_scope("float32"):
            linear = Linear(3, 4, np.random.default_rng(0))
            lstm = LSTM(3, 4, np.random.default_rng(1), num_layers=2)
            bilstm = BiLSTM(3, 4, np.random.default_rng(2))
        for module in (linear, lstm, bilstm):
            for p in module.parameters():
                assert p.data.dtype == np.float32

    def test_bilstm_zero_state_follows_parameter_dtype(self):
        with dtype_scope("float32"):
            bilstm = BiLSTM(3, 4, np.random.default_rng(0))
        for lstm in (bilstm.forward_lstm, bilstm.backward_lstm):
            h, c = lstm.cells[0].initial_state(2)
            assert h.dtype == np.float32
            assert c.dtype == np.float32

    def test_load_state_casts_into_module_dtype(self, tmp_path):
        linear64 = Linear(3, 4, np.random.default_rng(0))
        path = tmp_path / "weights.npz"
        save_state(linear64, path)
        with dtype_scope("float32"):
            linear32 = Linear(3, 4, np.random.default_rng(5))
        load_state(linear32, path)
        assert linear32.weight.data.dtype == np.float32
        np.testing.assert_array_equal(
            linear32.weight.data,
            linear64.weight.data.astype(np.float32),
        )


class TestGanDtype:
    def test_trainer_runs_float32_without_widening(self):
        from repro.gan.trainer import GanConfig, GanTrainer
        from repro.trajectories import HumanMotionSimulator

        dataset = HumanMotionSimulator(
            rng=np.random.default_rng(3), num_points=16
        ).build_dataset(24)
        config = GanConfig(noise_dim=4, hidden_size=6, embed_dim=3,
                           feature_dim=5, batch_size=8, epochs=1,
                           dropout_probability=0.0, seed=1)
        with dtype_scope("float32"):
            trainer = GanTrainer(dataset, config)
            assert trainer.generator.class_gain.data.dtype == np.float32
            history = trainer.train(epochs=1)
        assert history.discriminator_losses
        for module in (trainer.generator, trainer.discriminator):
            for p in module.parameters():
                assert p.data.dtype == np.float32
        assert all(np.isfinite(history.generator_losses))
