"""Tests for repro.nn.functional and repro.nn.layers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, GradientError
from repro.nn import (
    Dropout,
    Embedding,
    Linear,
    Module,
    Sequential,
    Tanh,
    Tensor,
    functional as F,
)
from tests.test_nn_tensor import check_gradient


class TestConcatStack:
    def test_concat_values(self):
        a, b = Tensor([[1.0, 2.0]]), Tensor([[3.0, 4.0]])
        out = F.concat([a, b], axis=1)
        assert out.data == pytest.approx(np.array([[1.0, 2.0, 3.0, 4.0]]))

    def test_concat_gradient(self, rng):
        a = rng.standard_normal((2, 3))
        b = rng.standard_normal((2, 2))
        check_gradient(lambda x, y: (F.concat([x, y], axis=1) ** 2.0).sum(),
                       a, b)

    def test_concat_rejects_empty(self):
        with pytest.raises(GradientError):
            F.concat([])

    def test_stack_values_and_gradient(self, rng):
        a = rng.standard_normal((3,))
        b = rng.standard_normal((3,))
        out = F.stack([Tensor(a), Tensor(b)], axis=0)
        assert out.shape == (2, 3)
        check_gradient(lambda x, y: (F.stack([x, y], axis=1) ** 2.0).sum(),
                       a, b)

    def test_stack_rejects_mismatched_shapes(self):
        with pytest.raises(GradientError):
            F.stack([Tensor([1.0]), Tensor([1.0, 2.0])])


class TestEmbedding:
    def test_lookup_values(self):
        weight = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
        out = F.embedding(weight, np.array([2, 0]))
        assert out.data == pytest.approx(np.array([[6.0, 7.0, 8.0],
                                                   [0.0, 1.0, 2.0]]))

    def test_gradient_accumulates_repeated_rows(self):
        weight = Tensor(np.zeros((3, 2)), requires_grad=True)
        out = F.embedding(weight, np.array([1, 1, 2]))
        out.sum().backward()
        assert weight.grad == pytest.approx(np.array([[0, 0], [2, 2], [1, 1]],
                                                     dtype=float))

    def test_rejects_out_of_range(self):
        weight = Tensor(np.zeros((3, 2)), requires_grad=True)
        with pytest.raises(GradientError):
            F.embedding(weight, np.array([3]))

    def test_rejects_float_indices(self):
        weight = Tensor(np.zeros((3, 2)), requires_grad=True)
        with pytest.raises(GradientError):
            F.embedding(weight, np.array([1.0]))


class TestDropout:
    def test_eval_mode_identity(self, rng):
        x = Tensor(np.ones((4, 4)))
        out = F.dropout(x, 0.5, rng, training=False)
        assert out.data == pytest.approx(np.ones((4, 4)))

    def test_inverted_scaling_preserves_mean(self, rng):
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.5, rng, training=True)
        assert out.data.mean() == pytest.approx(1.0, abs=0.05)

    def test_gradient_masked_like_forward(self, rng):
        x = Tensor(np.ones((1000,)), requires_grad=True)
        out = F.dropout(x, 0.5, rng, training=True)
        out.sum().backward()
        # Grad is 2.0 where kept, 0.0 where dropped — matching the output.
        assert np.all((x.grad == 0) == (out.data == 0))

    def test_rejects_bad_probability(self, rng):
        with pytest.raises(GradientError):
            F.dropout(Tensor([1.0]), 1.0, rng)


class TestLstmCellOp:
    def test_matches_composed_ops(self, rng):
        from repro.nn import LSTMCell
        cell = LSTMCell(4, 3, rng)
        x = Tensor(rng.standard_normal((5, 4)))
        state = cell.initial_state(5)
        h_fused, c_fused = cell(x, state)
        h_ref, c_ref = cell.forward_composed(x, state)
        assert h_fused.data == pytest.approx(h_ref.data)
        assert c_fused.data == pytest.approx(c_ref.data)

    def test_gradient(self, rng):
        gates = rng.standard_normal((3, 8))
        c_prev = rng.standard_normal((3, 2))

        def loss(g, c):
            h, c_out = F.lstm_cell(g, c)
            return (h ** 2.0).sum() + (c_out ** 2.0).sum()

        check_gradient(loss, gates, c_prev, tolerance=1e-5)

    def test_rejects_bad_shapes(self):
        with pytest.raises(GradientError):
            F.lstm_cell(Tensor(np.zeros((2, 7))), Tensor(np.zeros((2, 2))))
        with pytest.raises(GradientError):
            F.lstm_cell(Tensor(np.zeros((2, 8))), Tensor(np.zeros((3, 2))))


class TestLosses:
    def test_bce_with_logits_matches_manual(self, rng):
        logits = rng.standard_normal((6, 1))
        targets = rng.random((6, 1))
        loss = F.bce_with_logits(Tensor(logits), targets)
        probabilities = 1 / (1 + np.exp(-logits))
        manual = -(targets * np.log(probabilities)
                   + (1 - targets) * np.log(1 - probabilities)).mean()
        assert loss.item() == pytest.approx(float(manual), rel=1e-9)

    def test_bce_stable_for_extreme_logits(self):
        logits = Tensor(np.array([[100.0], [-100.0]]), requires_grad=True)
        loss = F.bce_with_logits(logits, np.array([[1.0], [0.0]]))
        assert np.isfinite(loss.item())
        loss.backward()
        assert np.all(np.isfinite(logits.grad))

    def test_bce_gradient(self, rng):
        logits = rng.standard_normal((4, 1))
        targets = rng.random((4, 1))
        check_gradient(lambda x: F.bce_with_logits(x, targets), logits,
                       tolerance=1e-6)

    def test_bce_rejects_bad_targets(self):
        with pytest.raises(GradientError):
            F.bce_with_logits(Tensor([[0.0]]), np.array([[1.5]]))
        with pytest.raises(GradientError):
            F.bce_with_logits(Tensor([[0.0]]), np.array([0.5]))

    def test_mse_loss(self):
        loss = F.mse_loss(Tensor([[1.0, 2.0]]), np.array([[0.0, 0.0]]))
        assert loss.item() == pytest.approx(2.5)


class TestLayers:
    def test_linear_forward(self, rng):
        layer = Linear(3, 2, rng)
        layer.weight.data = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 1.0]])
        layer.bias.data = np.array([0.5, -0.5])
        out = layer(Tensor([[1.0, 2.0, 3.0]]))
        assert out.data == pytest.approx(np.array([[1.5, 4.5]]))

    def test_linear_no_bias(self, rng):
        layer = Linear(3, 2, rng, bias=False)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_embedding_layer(self, rng):
        layer = Embedding(5, 4, rng)
        out = layer(np.array([0, 4]))
        assert out.shape == (2, 4)

    def test_dropout_module_respects_mode(self, rng):
        layer = Dropout(0.5, rng)
        x = Tensor(np.ones((100, 100)))
        layer.eval()
        assert layer(x).data == pytest.approx(np.ones((100, 100)))
        layer.train()
        assert np.any(layer(x).data == 0)

    def test_sequential_composition(self, rng):
        model = Sequential(Linear(3, 4, rng), Tanh(), Linear(4, 1, rng))
        out = model(Tensor(rng.standard_normal((5, 3))))
        assert out.shape == (5, 1)

    def test_sequential_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            Sequential()


class TestModuleProtocol:
    def _model(self, rng):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.first = Linear(3, 4, rng)
                self.blocks = [Linear(4, 4, rng), Linear(4, 4, rng)]
                self.head = Linear(4, 1, rng)

            def forward(self, x):
                x = self.first(x).tanh()
                for block in self.blocks:
                    x = block(x).tanh()
                return self.head(x)

        return Net()

    def test_parameters_found_recursively(self, rng):
        model = self._model(rng)
        # 4 linears x (weight + bias) = 8 parameter tensors.
        assert len(list(model.parameters())) == 8

    def test_named_parameters_unique(self, rng):
        model = self._model(rng)
        names = [name for name, _tensor in model.named_parameters()]
        assert len(names) == len(set(names)) == 8
        assert "blocks.0.weight" in names

    def test_num_parameters(self, rng):
        model = self._model(rng)
        expected = (3 * 4 + 4) + 2 * (4 * 4 + 4) + (4 * 1 + 1)
        assert model.num_parameters() == expected

    def test_zero_grad_clears_all(self, rng):
        model = self._model(rng)
        out = model(Tensor(rng.standard_normal((2, 3))))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_train_eval_propagates(self, rng):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.dropout = Dropout(0.5, rng)

            def forward(self, x):
                return self.dropout(x)

        model = Net()
        model.eval()
        assert not model.dropout.training
        model.train()
        assert model.dropout.training
