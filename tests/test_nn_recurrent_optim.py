"""Tests for repro.nn.recurrent, repro.nn.optim, repro.nn.init,
repro.nn.serialization."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn import (
    Adam,
    BiLSTM,
    LSTM,
    LSTMCell,
    Linear,
    Module,
    SGD,
    Tensor,
    load_state,
    save_state,
)
from repro.nn import init
from tests.test_nn_tensor import check_gradient, numerical_gradient


class TestLSTMCell:
    def test_output_shapes(self, rng):
        cell = LSTMCell(4, 3, rng)
        h, c = cell(Tensor(rng.standard_normal((6, 4))), cell.initial_state(6))
        assert h.shape == (6, 3)
        assert c.shape == (6, 3)

    def test_forget_gate_bias_initialized_to_one(self, rng):
        cell = LSTMCell(4, 3, rng)
        assert cell.bias.data[3:6] == pytest.approx(np.ones(3))
        assert cell.bias.data[:3] == pytest.approx(np.zeros(3))

    def test_parameter_gradient_check(self, rng):
        cell = LSTMCell(2, 2, rng)
        x_data = rng.standard_normal((3, 2))

        def loss_value():
            x = Tensor(x_data)
            h, c = cell(x, cell.initial_state(3))
            return float(((h ** 2.0).sum() + (c ** 2.0).sum()).data)

        x = Tensor(x_data, requires_grad=True)
        h, c = cell(x, cell.initial_state(3))
        ((h ** 2.0).sum() + (c ** 2.0).sum()).backward()
        numeric = numerical_gradient(loss_value, cell.weight_hh.data, 1e-6)
        assert cell.weight_hh.grad == pytest.approx(numeric, abs=1e-5)

    def test_rejects_bad_sizes(self, rng):
        with pytest.raises(ConfigurationError):
            LSTMCell(0, 3, rng)


class TestLSTM:
    def test_sequence_output(self, rng):
        lstm = LSTM(3, 5, rng, num_layers=2)
        inputs = [Tensor(rng.standard_normal((4, 3))) for _ in range(6)]
        outputs = lstm(inputs)
        assert len(outputs) == 6
        assert all(o.shape == (4, 5) for o in outputs)

    def test_forward_stacked(self, rng):
        lstm = LSTM(3, 5, rng)
        inputs = [Tensor(rng.standard_normal((4, 3))) for _ in range(6)]
        stacked = lstm.forward_stacked(inputs)
        assert stacked.shape == (6, 4, 5)

    def test_state_carries_information(self, rng):
        # The same input at t=1 must produce different output depending on
        # what was seen at t=0 — i.e. the LSTM actually has memory.
        lstm = LSTM(2, 4, rng)
        shared = Tensor(rng.standard_normal((1, 2)))
        run_a = lstm([Tensor(np.ones((1, 2))), shared])
        run_b = lstm([Tensor(-np.ones((1, 2))), shared])
        assert not np.allclose(run_a[1].data, run_b[1].data)

    def test_initial_state_override(self, rng):
        lstm = LSTM(2, 3, rng, num_layers=2)
        inputs = [Tensor(rng.standard_normal((2, 2)))]
        states = [(Tensor(np.ones((2, 3))), Tensor(np.ones((2, 3))))
                  for _ in range(2)]
        custom = lstm(inputs, states)
        default = lstm(inputs)
        assert not np.allclose(custom[0].data, default[0].data)

    def test_wrong_state_count_rejected(self, rng):
        lstm = LSTM(2, 3, rng, num_layers=2)
        with pytest.raises(ConfigurationError):
            lstm([Tensor(np.zeros((1, 2)))],
                 [(Tensor(np.zeros((1, 3))), Tensor(np.zeros((1, 3))))])

    def test_gradients_flow_through_time(self, rng):
        lstm = LSTM(2, 3, rng)
        first = Tensor(rng.standard_normal((2, 2)), requires_grad=True)
        rest = [Tensor(rng.standard_normal((2, 2))) for _ in range(5)]
        outputs = lstm([first] + rest)
        (outputs[-1] ** 2.0).sum().backward()  # loss only at the last step
        assert first.grad is not None
        assert np.abs(first.grad).max() > 0

    def test_empty_sequence_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            LSTM(2, 3, rng)([])


class TestBiLSTM:
    def test_per_step_output_width(self, rng):
        bilstm = BiLSTM(3, 4, rng)
        inputs = [Tensor(rng.standard_normal((2, 3))) for _ in range(5)]
        outputs = bilstm(inputs)
        assert len(outputs) == 5
        assert all(o.shape == (2, 8) for o in outputs)

    def test_final_summary_shape(self, rng):
        bilstm = BiLSTM(3, 4, rng)
        inputs = [Tensor(rng.standard_normal((2, 3))) for _ in range(5)]
        assert bilstm.final_summary(inputs).shape == (2, 8)

    def test_backward_direction_sees_future(self, rng):
        # Changing the LAST input must change the FIRST output's backward
        # half — the defining property of bidirectionality.
        bilstm = BiLSTM(2, 3, rng)
        base = [Tensor(np.zeros((1, 2))) for _ in range(4)]
        changed = list(base)
        changed[-1] = Tensor(np.ones((1, 2)))
        out_base = bilstm(base)[0].data
        out_changed = bilstm(changed)[0].data
        assert not np.allclose(out_base[:, 3:], out_changed[:, 3:])
        # The forward half of the first step cannot see the future.
        assert np.allclose(out_base[:, :3], out_changed[:, :3])


class TestInitializers:
    def test_xavier_bound(self, rng):
        weights = init.xavier_uniform((100, 50), rng)
        bound = np.sqrt(6 / 150)
        assert np.abs(weights).max() <= bound

    def test_orthogonal_is_orthogonal(self, rng):
        matrix = init.orthogonal((8, 8), rng)
        assert matrix @ matrix.T == pytest.approx(np.eye(8), abs=1e-10)

    def test_orthogonal_semi(self, rng):
        matrix = init.orthogonal((4, 8), rng)
        assert matrix @ matrix.T == pytest.approx(np.eye(4), abs=1e-10)

    def test_orthogonal_rejects_1d(self, rng):
        with pytest.raises(ConfigurationError):
            init.orthogonal((4,), rng)

    def test_zeros(self):
        assert np.all(init.zeros((3, 2)) == 0)

    def test_uniform_bound(self, rng):
        weights = init.uniform((100,), rng, bound=0.2)
        assert np.abs(weights).max() <= 0.2


class TestOptimizers:
    def _quadratic_problem(self):
        target = np.array([3.0, -2.0])
        parameter = Tensor(np.zeros(2), requires_grad=True)
        return parameter, target

    def test_sgd_converges_on_quadratic(self):
        parameter, target = self._quadratic_problem()
        optimizer = SGD([parameter], learning_rate=0.1, momentum=0.5)
        for _ in range(200):
            optimizer.zero_grad()
            loss = ((parameter - Tensor(target)) ** 2.0).sum()
            loss.backward()
            optimizer.step()
        assert parameter.data == pytest.approx(target, abs=1e-3)

    def test_adam_converges_on_quadratic(self):
        parameter, target = self._quadratic_problem()
        optimizer = Adam([parameter], learning_rate=0.1)
        for _ in range(300):
            optimizer.zero_grad()
            loss = ((parameter - Tensor(target)) ** 2.0).sum()
            loss.backward()
            optimizer.step()
        assert parameter.data == pytest.approx(target, abs=1e-3)

    def test_clip_gradients(self):
        parameter = Tensor(np.zeros(3), requires_grad=True)
        parameter.grad = np.array([3.0, 4.0, 0.0])
        optimizer = SGD([parameter], learning_rate=0.1)
        norm = optimizer.clip_gradients(1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(parameter.grad) == pytest.approx(1.0, rel=1e-6)

    def test_clip_noop_below_limit(self):
        parameter = Tensor(np.zeros(2), requires_grad=True)
        parameter.grad = np.array([0.3, 0.4])
        SGD([parameter], 0.1).clip_gradients(1.0)
        assert parameter.grad == pytest.approx([0.3, 0.4])

    def test_step_skips_gradless_parameters(self):
        parameter = Tensor(np.ones(2), requires_grad=True)
        Adam([parameter], 0.1).step()
        assert parameter.data == pytest.approx([1.0, 1.0])

    def test_rejects_empty_parameters(self):
        with pytest.raises(ConfigurationError):
            SGD([], 0.1)

    def test_rejects_non_grad_parameters(self):
        with pytest.raises(ConfigurationError):
            Adam([Tensor([1.0])], 0.1)

    def test_rejects_bad_learning_rate(self):
        parameter = Tensor(np.zeros(2), requires_grad=True)
        with pytest.raises(ConfigurationError):
            SGD([parameter], 0.0)


class TestSerialization:
    def _model(self, rng):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.layer = Linear(3, 2, rng)

            def forward(self, x):
                return self.layer(x)

        return Net()

    def test_save_load_roundtrip(self, rng, tmp_path):
        source = self._model(rng)
        destination = self._model(np.random.default_rng(99))
        path = tmp_path / "weights.npz"
        save_state(source, path)
        load_state(destination, path)
        assert destination.layer.weight.data == pytest.approx(
            source.layer.weight.data
        )

    def test_load_rejects_architecture_mismatch(self, rng, tmp_path):
        source = self._model(rng)
        path = tmp_path / "weights.npz"
        save_state(source, path)

        class Other(Module):
            def __init__(self):
                super().__init__()
                self.different = Linear(3, 2, rng)

            def forward(self, x):
                return self.different(x)

        with pytest.raises(ConfigurationError):
            load_state(Other(), path)

    def test_load_rejects_shape_mismatch(self, rng, tmp_path):
        source = self._model(rng)
        path = tmp_path / "weights.npz"
        save_state(source, path)

        class Bigger(Module):
            def __init__(self):
                super().__init__()
                self.layer = Linear(3, 5, rng)

            def forward(self, x):
                return self.layer(x)

        with pytest.raises(ConfigurationError):
            load_state(Bigger(), path)
