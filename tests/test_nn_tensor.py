"""Tests for repro.nn.tensor: autograd correctness against numerical grads."""

import numpy as np
import pytest

from repro.errors import GradientError
from repro.nn import Tensor


def numerical_gradient(func, array, epsilon=1e-6):
    """Central-difference gradient of scalar ``func()`` w.r.t. ``array``."""
    grad = np.zeros_like(array)
    iterator = np.nditer(array, flags=["multi_index"])
    for _ in iterator:
        index = iterator.multi_index
        original = array[index]
        array[index] = original + epsilon
        plus = func()
        array[index] = original - epsilon
        minus = func()
        array[index] = original
        grad[index] = (plus - minus) / (2 * epsilon)
    return grad


def check_gradient(build_loss, *arrays, tolerance=1e-6):
    """Assert autograd and numerical gradients agree for every input."""
    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    loss = build_loss(*tensors)
    loss.backward()
    for tensor, array in zip(tensors, arrays):
        numeric = numerical_gradient(
            lambda: float(build_loss(*[Tensor(a) for a in arrays]).data),
            array,
        )
        assert tensor.grad == pytest.approx(numeric, abs=tolerance), (
            "gradient mismatch"
        )


class TestTensorBasics:
    def test_item_scalar(self):
        assert Tensor(3.5).item() == 3.5

    def test_item_rejects_non_scalar(self):
        with pytest.raises(GradientError):
            Tensor([1.0, 2.0]).item()

    def test_detach_cuts_graph(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = (x * 2).detach()
        assert not y.requires_grad

    def test_numpy_returns_copy(self):
        x = Tensor([1.0, 2.0])
        copy = x.numpy()
        copy[0] = 99.0
        assert x.data[0] == 1.0

    def test_backward_requires_scalar(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(GradientError):
            (x * 2).backward()

    def test_backward_with_seed_gradient(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 3.0
        y.backward(np.array([1.0, 10.0]))
        assert x.grad == pytest.approx([3.0, 30.0])

    def test_gradient_accumulates(self):
        x = Tensor([2.0], requires_grad=True)
        (x * 1.0).sum().backward()
        (x * 1.0).sum().backward()
        assert x.grad == pytest.approx([2.0])

    def test_zero_grad(self):
        x = Tensor([2.0], requires_grad=True)
        (x * 3.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_shared_node_grad_counted_once_per_path(self):
        x = Tensor([3.0], requires_grad=True)
        y = x * 2.0
        z = (y + y).sum()   # two paths through y
        z.backward()
        assert x.grad == pytest.approx([4.0])


class TestArithmeticGradients:
    def test_add_broadcast(self, rng):
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((4,))
        check_gradient(lambda x, y: (x + y).sum(), a, b)

    def test_mul_broadcast(self, rng):
        a = rng.standard_normal((2, 3, 4))
        b = rng.standard_normal((1, 3, 1))
        check_gradient(lambda x, y: (x * y).sum(), a, b)

    def test_sub_and_div(self, rng):
        a = rng.standard_normal((3, 3))
        b = rng.standard_normal((3, 3)) + 3.0
        check_gradient(lambda x, y: (x / y - y).sum(), a, b, tolerance=1e-5)

    def test_rsub_rdiv(self):
        x = Tensor([2.0], requires_grad=True)
        y = (1.0 - x) + (4.0 / x)
        y.sum().backward()
        assert x.grad == pytest.approx([-1.0 - 4.0 / 4.0])

    def test_pow(self, rng):
        a = np.abs(rng.standard_normal((4,))) + 0.5
        check_gradient(lambda x: x.pow(3.0).sum(), a, tolerance=1e-4)

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(GradientError):
            Tensor([1.0]).pow(np.array([2.0]))

    @pytest.mark.parametrize("op", ["exp", "tanh", "sigmoid", "relu", "abs"])
    def test_elementwise_ops(self, op, rng):
        a = rng.standard_normal((5,)) + 0.1  # avoid relu/abs kink at 0
        check_gradient(lambda x: getattr(x, op)().sum(), a, tolerance=1e-5)

    def test_log(self, rng):
        a = np.abs(rng.standard_normal((5,))) + 0.5
        check_gradient(lambda x: x.log().sum(), a, tolerance=1e-5)

    def test_clip_gradient_masked(self):
        x = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        assert x.grad == pytest.approx([0.0, 1.0, 0.0])

    def test_clip_rejects_bad_bounds(self):
        with pytest.raises(GradientError):
            Tensor([1.0]).clip(1.0, 1.0)


class TestReductionsAndShapes:
    def test_sum_axis_keepdims(self, rng):
        a = rng.standard_normal((3, 4))
        check_gradient(lambda x: (x.sum(axis=0, keepdims=True) ** 2.0).sum(), a)

    def test_mean(self, rng):
        a = rng.standard_normal((4, 5))
        check_gradient(lambda x: (x.mean(axis=1) ** 2.0).sum(), a)

    def test_mean_all(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        x.mean().backward()
        assert x.grad == pytest.approx(np.full((2, 3), 1 / 6))

    def test_reshape(self, rng):
        a = rng.standard_normal((2, 6))
        check_gradient(lambda x: (x.reshape(3, 4) ** 2.0).sum(), a)

    def test_transpose(self, rng):
        a = rng.standard_normal((2, 3, 4))
        check_gradient(
            lambda x: (x.transpose((2, 0, 1)) ** 2.0).sum(), a
        )

    def test_getitem_scatter(self, rng):
        a = rng.standard_normal((5, 3))
        check_gradient(lambda x: (x[1:4, :2] ** 2.0).sum(), a)

    def test_getitem_repeated_index_accumulates(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x[np.array([0, 0, 1])].sum()
        y.backward()
        assert x.grad == pytest.approx([2.0, 1.0])


class TestMatmulGradients:
    def test_matrix_matrix(self, rng):
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((4, 5))
        check_gradient(lambda x, y: (x @ y).sum(), a, b)

    def test_matrix_vector(self, rng):
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((4,))
        check_gradient(lambda x, y: (x @ y).sum(), a, b)

    def test_vector_matrix(self, rng):
        a = rng.standard_normal((4,))
        b = rng.standard_normal((4, 5))
        check_gradient(lambda x, y: (x @ y).sum(), a, b)

    def test_vector_vector(self, rng):
        a = rng.standard_normal((4,))
        b = rng.standard_normal((4,))
        check_gradient(lambda x, y: x @ y, a, b)

    def test_batched_matmul(self, rng):
        a = rng.standard_normal((2, 3, 4))
        b = rng.standard_normal((2, 4, 5))
        check_gradient(lambda x, y: (x @ y).sum(), a, b)

    def test_broadcast_batched_matmul(self, rng):
        a = rng.standard_normal((2, 3, 4))
        b = rng.standard_normal((4, 5))
        check_gradient(lambda x, y: (x @ y).sum(), a, b)


class TestCompositeGraphs:
    def test_mlp_like_graph(self, rng):
        w1 = rng.standard_normal((4, 8))
        w2 = rng.standard_normal((8, 1))
        x = rng.standard_normal((10, 4))

        def loss(a, b, c):
            hidden = (a @ b).tanh()
            return ((hidden @ c).sigmoid() ** 2.0).mean()

        check_gradient(loss, x, w1, w2, tolerance=1e-5)

    def test_diamond_dependency(self, rng):
        a = rng.standard_normal((3,))
        check_gradient(lambda x: (x.tanh() * x.sigmoid()).sum(), a,
                       tolerance=1e-5)
