"""Tests for the periodic-motion filter and the Fan scene entity.

This closes the loop on Sec. 6's motivation: a fixed repeated trajectory
or a fan is filterable by a smart eavesdropper; real walks and GAN ghosts
are not.
"""

import numpy as np
import pytest

from repro.errors import SceneError, TrackingError
from repro.eavesdropper import filter_periodic_tracks, periodicity_score
from repro.geometry import Rectangle
from repro.radar import Fan, FmcwRadar, RadarConfig, Scene
from repro.types import Trajectory


def _circle(num_loops: float, num_points: int = 60,
            radius: float = 1.0) -> Trajectory:
    t = np.linspace(0.0, 2 * np.pi * num_loops, num_points)
    return Trajectory(np.column_stack([radius * np.cos(t),
                                       radius * np.sin(t)]), dt=0.2)


class TestPeriodicityScore:
    def test_looping_circle_scores_high(self):
        assert periodicity_score(_circle(3.0)) > 0.9

    def test_straight_walk_scores_low(self):
        walk = Trajectory(np.linspace([0, 0], [5, 2], 50), dt=0.2)
        assert periodicity_score(walk) < 0.5

    def test_simulated_human_scores_low(self, sample_trajectory):
        assert periodicity_score(sample_trajectory) < 0.6

    def test_gan_ghosts_score_lower_than_circles(self, tiny_gan, rng):
        ghosts = tiny_gan.sampler.sample(10, rng=rng)
        ghost_scores = [periodicity_score(g) for g in ghosts]
        assert np.mean(ghost_scores) < periodicity_score(_circle(3.0))

    def test_static_blob_is_maximally_periodic(self):
        blob = Trajectory(np.zeros((20, 2)) + [3.0, 3.0], dt=0.2)
        assert periodicity_score(blob) == pytest.approx(1.0)

    def test_rejects_short_trajectory(self):
        with pytest.raises(TrackingError):
            periodicity_score(Trajectory([[0, 0], [1, 1]], dt=1.0))


class TestFilterPeriodicTracks:
    def test_separates_circles_from_walks(self, sample_trajectory):
        kept, rejected = filter_periodic_tracks(
            [sample_trajectory, _circle(4.0)]
        )
        assert sample_trajectory in kept
        assert len(rejected) == 1

    def test_threshold_validation(self, sample_trajectory):
        with pytest.raises(TrackingError):
            filter_periodic_tracks([sample_trajectory], threshold=0.0)

    def test_short_tracks_kept(self):
        stub = Trajectory([[0, 0], [1, 0], [2, 0]], dt=1.0)
        kept, rejected = filter_periodic_tracks([stub])
        assert kept == [stub]
        assert rejected == []


class TestFanEntity:
    def test_blade_sweeps_circle(self):
        fan = Fan((3.0, 3.0), blade_radius=0.4, rotation_hz=1.0)
        p0 = fan.blade_position(0.0)
        p_half = fan.blade_position(0.5)
        p_full = fan.blade_position(1.0)
        assert p0 == pytest.approx(p_full)
        assert np.linalg.norm(p0 - p_half) == pytest.approx(0.8, abs=1e-9)

    def test_rejects_invalid(self):
        with pytest.raises(SceneError):
            Fan((1.0, 1.0), blade_radius=0.0)
        with pytest.raises(SceneError):
            Fan((1.0, 1.0), rotation_hz=0.0)

    def test_fan_track_filtered_human_kept(self, straight_walk):
        """End-to-end: radar sees fan + human; the filter removes the fan."""
        config = RadarConfig(position=(5.0, 0.1), axis_angle=0.0,
                             facing_angle=np.pi / 2, frame_rate=20.0)
        radar = FmcwRadar(config)
        scene = Scene(Rectangle.from_size(10.0, 6.6))
        scene.add_human(straight_walk)
        scene.add(Fan((8.0, 4.0), rotation_hz=0.5, rcs=0.8))
        result = radar.sense(scene, 8.0, rng=np.random.default_rng(8))
        tracks = result.trajectories()
        assert len(tracks) >= 2
        kept, rejected = filter_periodic_tracks(tracks[:2])
        assert len(rejected) >= 1
        # The surviving track is the human's.
        assert len(kept) >= 1
        human_like = kept[0]
        errors = np.linalg.norm(
            human_like.resampled(50).points - straight_walk.points, axis=1
        )
        assert np.median(errors) < 0.5
