"""Golden equivalence suite: batched vs per-frame receive processing.

The batched engine in `repro.radar.pipeline` is only trusted because these
tests pin every stage — cube FFT, shifted-difference background
subtraction, lag-domain Eq. 2 beamforming — and the full ``sense`` paths
(FMCW and pulsed) to the per-frame reference backend at ``atol=1e-10``,
with and without noise, plus the ``RF_PROTECT_PIPELINE`` dispatch rules
and the read-only invariants of the shared sweep planes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ENV_REGISTRY, get_pipeline_backend
from repro.errors import ConfigurationError, SignalProcessingError
from repro.geometry import Rectangle
from repro.radar import (
    ZERO_PAD_FACTOR,
    FmcwRadar,
    PulsedRadar,
    RadarConfig,
    Scene,
    UniformLinearArray,
    background_subtract,
    batched_background_subtract,
    batched_beamform_power,
    batched_range_profiles,
    frame_range_profiles,
    pipeline_backend,
    process_sweep,
)
from repro.radar import pipeline as pipeline_module
from repro.signal.chirp import ChirpConfig
from repro.types import Trajectory

ATOL = 1e-10


@pytest.fixture(scope="module")
def config() -> RadarConfig:
    # Short chirps keep the FFTs small; the kernels are shape-generic.
    return RadarConfig(chirp=ChirpConfig(duration=6.4e-5))


@pytest.fixture(scope="module")
def array(config) -> UniformLinearArray:
    return UniformLinearArray(config)


def random_cube(seed: int, num_frames: int, config: RadarConfig,
                scale: float = 0.05) -> np.ndarray:
    """A beat cube with realistic (small) amplitudes."""
    rng = np.random.default_rng(seed)
    shape = (num_frames, config.num_antennas, config.chirp.num_samples)
    return scale * (rng.normal(size=shape) + 1j * rng.normal(size=shape))


def walking_scene() -> Scene:
    room = Rectangle(0.0, 0.0, 8.0, 6.0)
    scene = Scene(room)
    scene.add_static((2.0, 3.0))
    scene.add_static((6.0, 4.5), rcs=0.5)
    walk = Trajectory(np.linspace([2.0, 2.0], [5.5, 4.0], 40), dt=0.1)
    scene.add_human(walk)
    return scene


class TestStageEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_cube_fft_matches_per_frame(self, config, seed):
        cube = random_cube(seed, 9, config)
        batched = batched_range_profiles(cube, config)
        for frame, profile in zip(cube, batched):
            np.testing.assert_allclose(
                profile, frame_range_profiles(frame, config), atol=ATOL)

    def test_blocked_fft_matches_single_pass(self, config, monkeypatch):
        cube = random_cube(11, 17, config)
        whole = batched_range_profiles(cube, config)
        # Shrink the block budget so the cube is split across many blocks.
        monkeypatch.setattr(pipeline_module, "_CHUNK_BYTES", 1 << 14)
        blocked = batched_range_profiles(cube, config)
        np.testing.assert_array_equal(blocked, whole)

    def test_shifted_difference_matches_chain(self, config):
        profiles = batched_range_profiles(random_cube(2, 7, config), config)
        batched = batched_background_subtract(profiles)
        previous = None
        for frame, subtracted in zip(profiles, batched):
            reference = background_subtract(frame, previous)
            previous = frame
            np.testing.assert_allclose(subtracted, reference, atol=ATOL)

    @pytest.mark.parametrize("taper", ["hamming", "hann", None])
    def test_lag_domain_beamform_matches_eq2(self, config, array, taper):
        profiles = batched_range_profiles(random_cube(3, 6, config), config)
        subtracted = batched_background_subtract(profiles)
        angles = config.angle_grid()
        power_cube = batched_beamform_power(subtracted, array, angles,
                                            taper=taper)
        assert power_cube.shape == (6, profiles.shape[-1], angles.size)
        for frame, power in zip(subtracted, power_cube):
            reference = array.beamform(frame, angles, taper=taper)
            np.testing.assert_allclose(power, reference.T, atol=ATOL)

    def test_process_sweep_matches_naive_backend(self, config):
        radar = FmcwRadar(config)
        cube = random_cube(5, 8, config)
        times = np.arange(8) / config.frame_rate
        naive_profiles, naive_raw = radar._process_sweep_naive(
            times, cube, 6.0)
        sweep = process_sweep(cube, config, radar.array, times, max_range=6.0)
        np.testing.assert_allclose(sweep.raw_profiles, naive_raw, atol=ATOL)
        for ours, reference in zip(sweep.profiles(), naive_profiles):
            np.testing.assert_allclose(ours.power, reference.power, atol=ATOL)
            np.testing.assert_array_equal(ours.ranges, reference.ranges)
            np.testing.assert_array_equal(ours.angles, reference.angles)
            assert ours.time == reference.time


class TestStageValidation:
    def test_fft_rejects_non_cube(self, config):
        with pytest.raises(SignalProcessingError, match="beat cube"):
            batched_range_profiles(
                np.zeros((config.num_antennas, config.chirp.num_samples),
                         dtype=complex), config)

    def test_fft_rejects_wrong_antenna_count(self, config):
        with pytest.raises(SignalProcessingError, match="beat cube"):
            batched_range_profiles(
                np.zeros((4, config.num_antennas + 1,
                          config.chirp.num_samples), dtype=complex), config)

    def test_subtract_rejects_empty_cube(self):
        with pytest.raises(SignalProcessingError, match="frame axis"):
            batched_background_subtract(np.zeros((0, 3, 5), dtype=complex))

    def test_beamform_rejects_wrong_antenna_count(self, config, array):
        with pytest.raises(SignalProcessingError, match="profile cube"):
            batched_beamform_power(np.zeros((3, 2, 5), dtype=complex),
                                   array, config.angle_grid())

    def test_process_sweep_rejects_time_mismatch(self, config, array):
        cube = random_cube(6, 4, config)
        with pytest.raises(SignalProcessingError, match="frame times"):
            process_sweep(cube, config, array, np.arange(5, dtype=float))


class TestSenseEquivalence:
    @pytest.mark.parametrize("noise_std", [0.0, 5e-4])
    def test_fmcw_sense_is_backend_independent(self, monkeypatch, noise_std):
        results = {}
        for backend in ("naive", "vectorized"):
            monkeypatch.setenv("RF_PROTECT_PIPELINE", backend)
            radar = FmcwRadar(RadarConfig(noise_std=noise_std))
            results[backend] = radar.sense(walking_scene(), 1.2,
                                           rng=np.random.default_rng(17))
        naive, vectorized = results["naive"], results["vectorized"]
        np.testing.assert_allclose(vectorized.raw_profiles,
                                   naive.raw_profiles, atol=ATOL)
        assert len(vectorized.profiles) == len(naive.profiles)
        for p_vec, p_naive in zip(vectorized.profiles, naive.profiles):
            np.testing.assert_allclose(p_vec.power, p_naive.power, atol=ATOL)
            np.testing.assert_array_equal(p_vec.ranges, p_naive.ranges)
            np.testing.assert_array_equal(p_vec.angles, p_naive.angles)
            assert p_vec.time == p_naive.time

    def test_pulsed_sense_is_backend_independent(self, monkeypatch):
        results = {}
        for backend in ("naive", "vectorized"):
            monkeypatch.setenv("RF_PROTECT_PIPELINE", backend)
            results[backend] = PulsedRadar().sense(
                walking_scene(), 1.0, rng=np.random.default_rng(23))
        naive, vectorized = results["naive"], results["vectorized"]
        for p_vec, p_naive in zip(vectorized.profiles, naive.profiles):
            np.testing.assert_allclose(p_vec.power, p_naive.power, atol=ATOL)
            np.testing.assert_array_equal(p_vec.ranges, p_naive.ranges)
            assert p_vec.time == p_naive.time


class TestSensingResultInvariants:
    @pytest.fixture(scope="class")
    def both_results(self):
        # The built-in monkeypatch fixture is function-scoped; patch
        # manually so the (expensive) sensing runs happen once per class.
        patcher = pytest.MonkeyPatch()
        results = {}
        try:
            for backend in ("naive", "vectorized"):
                patcher.setenv("RF_PROTECT_PIPELINE", backend)
                results[backend] = FmcwRadar().sense(
                    walking_scene(), 3.0, rng=np.random.default_rng(29))
        finally:
            patcher.undo()
        return results

    def test_phase_series_identical(self, both_results):
        naive = both_results["naive"].phase_series(3.0)
        vectorized = both_results["vectorized"].phase_series(3.0)
        np.testing.assert_allclose(vectorized, naive, atol=ATOL)

    def test_tracks_identical(self, both_results):
        naive_tracks = both_results["naive"].tracks()
        vec_tracks = both_results["vectorized"].tracks()
        assert len(vec_tracks) == len(naive_tracks)
        for ours, reference in zip(vec_tracks, naive_tracks):
            np.testing.assert_allclose(ours.to_trajectory().points,
                                       reference.to_trajectory().points,
                                       atol=1e-8)

    def test_best_trajectory_identical(self, both_results):
        naive = both_results["naive"].best_trajectory()
        vectorized = both_results["vectorized"].best_trajectory()
        np.testing.assert_allclose(vectorized.points, naive.points,
                                   atol=1e-8)

    def test_vectorized_profiles_share_readonly_planes(self, both_results):
        profiles = both_results["vectorized"].profiles
        assert profiles[0].ranges is profiles[1].ranges
        assert profiles[0].angles is profiles[1].angles
        for plane in (profiles[0].power, profiles[0].ranges,
                      profiles[0].angles):
            assert not plane.flags.writeable
            with pytest.raises(ValueError, match="read-only"):
                plane[...] = 0.0

    def test_range_bins_match_raw_profile_grid(self, both_results):
        for result in both_results.values():
            bins = result.range_bins()
            assert bins.shape[0] == result.raw_profiles.shape[-1]
            assert (bins.shape[0]
                    == result.config.chirp.num_samples * ZERO_PAD_FACTOR // 2)


class TestZeroPadSingleSource:
    def test_private_alias_is_the_public_constant(self):
        from repro.radar.processing import _ZERO_PAD_FACTOR
        assert _ZERO_PAD_FACTOR is ZERO_PAD_FACTOR

    def test_pipeline_grid_uses_the_constant(self, config):
        cube = random_cube(7, 3, config)
        profiles = batched_range_profiles(cube, config)
        assert (profiles.shape[-1]
                == config.chirp.num_samples * ZERO_PAD_FACTOR // 2)


class TestBackendDispatch:
    def test_env_toggle_selects_backend(self, monkeypatch):
        monkeypatch.setenv("RF_PROTECT_PIPELINE", "naive")
        assert pipeline_backend() == "naive"
        monkeypatch.setenv("RF_PROTECT_PIPELINE", "vectorized")
        assert pipeline_backend() == "vectorized"

    def test_default_backend_is_vectorized(self, monkeypatch):
        monkeypatch.delenv("RF_PROTECT_PIPELINE", raising=False)
        assert pipeline_backend() == "vectorized"

    def test_invalid_backend_rejected(self, monkeypatch):
        monkeypatch.setenv("RF_PROTECT_PIPELINE", "turbo")
        with pytest.raises(ConfigurationError, match="RF_PROTECT_PIPELINE"):
            pipeline_backend()

    def test_parse_is_case_insensitive(self):
        value = get_pipeline_backend(environ={"RF_PROTECT_PIPELINE": "NAIVE"})
        assert value == "naive"

    def test_variable_is_registered(self):
        assert "RF_PROTECT_PIPELINE" in ENV_REGISTRY
