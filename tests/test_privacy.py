"""Tests for repro.privacy: the information-theoretic analysis of Sec. 7."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.privacy import (
    OccupancyModel,
    attacker_count_accuracy,
    binomial_pmf,
    breath_guess_probability,
    mutual_information_curve,
    occupancy_detection_rate,
)


class TestBinomialPmf:
    def test_sums_to_one(self):
        pmf = binomial_pmf(10, 0.3)
        assert pmf.sum() == pytest.approx(1.0)

    def test_matches_closed_form_small(self):
        pmf = binomial_pmf(2, 0.5)
        assert pmf == pytest.approx([0.25, 0.5, 0.25])

    def test_degenerate_probabilities(self):
        assert binomial_pmf(3, 0.0) == pytest.approx([1, 0, 0, 0])
        assert binomial_pmf(3, 1.0) == pytest.approx([0, 0, 0, 1])

    def test_n_zero(self):
        assert binomial_pmf(0, 0.7) == pytest.approx([1.0])

    def test_mean(self):
        pmf = binomial_pmf(20, 0.35)
        mean = (np.arange(21) * pmf).sum()
        assert mean == pytest.approx(7.0)

    def test_rejects_invalid(self):
        with pytest.raises(ConfigurationError):
            binomial_pmf(-1, 0.5)
        with pytest.raises(ConfigurationError):
            binomial_pmf(3, 1.5)


class TestOccupancyModel:
    def test_pmf_z_is_convolution(self):
        model = OccupancyModel(2, 0.5, 1, 0.5)
        # X ~ Bin(2, .5) = [.25, .5, .25]; Y ~ Bin(1, .5) = [.5, .5]
        assert model.pmf_z() == pytest.approx([0.125, 0.375, 0.375, 0.125])

    def test_joint_marginals_consistent(self):
        model = OccupancyModel(4, 0.2, 3, 0.5)
        joint = model.joint_xz()
        assert joint.sum() == pytest.approx(1.0)
        assert joint.sum(axis=1) == pytest.approx(model.pmf_x())
        assert joint.sum(axis=0) == pytest.approx(model.pmf_z())

    def test_no_phantoms_gives_full_information(self):
        model = OccupancyModel(4, 0.2, 0, 0.5)
        # Z = X exactly: I(X;Z) = H(X).
        assert model.mutual_information() == pytest.approx(model.entropy_x())

    def test_always_on_phantoms_also_leak_everything(self):
        # q = 1: Z = X + M deterministically; the shift hides nothing.
        model = OccupancyModel(4, 0.2, 4, 1.0)
        assert model.mutual_information() == pytest.approx(model.entropy_x())

    def test_q_half_minimizes_leakage(self):
        values = {
            q: OccupancyModel(4, 0.2, 4, q).mutual_information()
            for q in (0.0, 0.25, 0.5, 0.75, 1.0)
        }
        assert values[0.5] < values[0.0]
        assert values[0.5] < values[1.0]
        assert values[0.5] <= values[0.25]
        assert values[0.5] <= values[0.75]

    def test_more_phantoms_leak_less(self):
        leaks = [OccupancyModel(4, 0.2, m, 0.5).mutual_information()
                 for m in (1, 2, 4, 8)]
        assert all(b < a for a, b in zip(leaks, leaks[1:]))

    def test_mutual_information_bounds(self):
        model = OccupancyModel(4, 0.2, 4, 0.5)
        assert 0.0 <= model.mutual_information() <= model.entropy_x()


class TestMutualInformationCurve:
    def test_shape(self):
        surface = mutual_information_curve(4, 0.2, np.array([1, 2]),
                                           np.linspace(0, 1, 5))
        assert surface.shape == (2, 5)

    def test_fig7_qualitative_shape(self):
        """The headline claims of Fig. 7 in one test."""
        q_grid = np.linspace(0, 1, 21)
        surface = mutual_information_curve(4, 0.2, np.array([1, 2, 4, 8]),
                                           q_grid)
        # Endpoints leak the most for every M.
        for row in surface:
            assert row[0] == pytest.approx(row.max())
            interior_min_q = q_grid[np.argmin(row)]
            assert 0.3 <= interior_min_q <= 0.7
        # Minimum leakage decreases with M.
        minima = surface.min(axis=1)
        assert all(b < a for a, b in zip(minima, minima[1:]))

    def test_rejects_2d_grids(self):
        with pytest.raises(ConfigurationError):
            mutual_information_curve(4, 0.2, np.zeros((2, 2), dtype=int),
                                     np.linspace(0, 1, 3))

    @pytest.mark.parametrize("moving_probability", [0.0, 1.0])
    def test_degenerate_occupancy_leaks_nothing(self, moving_probability):
        # p = 0 (nobody moves) and p = 1 (everybody moves) make X
        # deterministic, so H(X) = 0 and I(X; Z) must be exactly 0 over
        # the whole (M, q) grid — no phantom budget can leak less.
        surface = mutual_information_curve(
            4, moving_probability, np.array([0, 1, 4, 8]),
            np.linspace(0, 1, 9),
        )
        assert surface == pytest.approx(np.zeros_like(surface))


class TestBreathGuess:
    def test_paper_formula(self):
        assert breath_guess_probability(1, 3) == pytest.approx(0.25)
        assert breath_guess_probability(2, 2) == pytest.approx(0.5)

    def test_no_fakes_means_certainty(self):
        # num_fake = 0 is the undefended room: the victim's breath is
        # the only candidate, so the guess succeeds with certainty for
        # any occupancy.
        for num_real in (1, 2, 7):
            assert breath_guess_probability(num_real, 0) == 1.0

    def test_rejects_empty_room(self):
        with pytest.raises(ConfigurationError):
            breath_guess_probability(0, 0)


class TestOccupancyDetection:
    def test_without_defense_perfect(self):
        rates = occupancy_detection_rate(4, 0.2, 0, 0.0)
        assert rates["without_defense"] == 1.0
        assert rates["with_defense"] == pytest.approx(1.0)

    def test_with_defense_degrades(self):
        rates = occupancy_detection_rate(4, 0.2, 4, 0.5)
        assert rates["with_defense"] < 1.0

    def test_more_phantoms_degrade_more(self):
        few = occupancy_detection_rate(4, 0.2, 1, 0.5)["with_defense"]
        many = occupancy_detection_rate(4, 0.2, 8, 0.5)["with_defense"]
        assert many < few


class TestCountAttack:
    def test_map_attacker_beats_chance_but_not_perfect(self, rng):
        result = attacker_count_accuracy(4, 0.2, 4, 0.5, rng=rng,
                                         trials=20000)
        accuracy = result["accuracy_with_defense"]
        assert accuracy < 0.95          # the defense hurts
        assert accuracy > 1.0 / 5.0     # MAP still beats uniform guessing

    def test_no_phantoms_gives_perfect_count(self, rng):
        result = attacker_count_accuracy(4, 0.2, 0, 0.5, rng=rng,
                                         trials=5000)
        assert result["accuracy_with_defense"] == pytest.approx(1.0)
        assert result["mae_with_defense"] == pytest.approx(0.0)

    def test_accuracy_decreases_with_phantoms(self, rng):
        accuracies = [
            attacker_count_accuracy(4, 0.2, m, 0.5, rng=rng,
                                    trials=20000)["accuracy_with_defense"]
            for m in (1, 4, 12)
        ]
        assert accuracies[2] < accuracies[0]

    def test_rejects_bad_trials(self, rng):
        with pytest.raises(ConfigurationError):
            attacker_count_accuracy(4, 0.2, 4, 0.5, rng=rng, trials=0)

    def test_single_human_still_confusable(self, rng):
        # N = 1 is the smallest occupancy: X is Bernoulli(p), yet with
        # phantoms active the MAP attacker must still drop below
        # certainty while staying a proper probability.
        result = attacker_count_accuracy(1, 0.2, 4, 0.5, rng=rng,
                                         trials=4000)
        assert result["accuracy_without_defense"] == pytest.approx(1.0)
        assert 0.0 < result["accuracy_with_defense"] < 1.0
        assert result["mae_with_defense"] >= 0.0
