"""Property tests for the batched synthesis engine and the parallel runner.

Hypothesis generates adversarial component sets to check the algebraic
invariants the vectorized kernel must share with the physics: synthesis is
linear in amplitude, invariant under component reordering, and
deterministic. The parallel `run_experiments` fan-out is pinned to its
serial execution: worker count must never change results.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.runner import experiment_seeds, run_experiments
from repro.radar import (
    PathComponent,
    RadarConfig,
    UniformLinearArray,
    synthesize_frame_vectorized,
    synthesize_frames,
)

CONFIG = RadarConfig()
ARRAY = UniformLinearArray(CONFIG)

component_strategy = st.builds(
    PathComponent,
    distance=st.floats(0.0, 20.0),
    angle=st.floats(1e-3, np.pi - 1e-3),
    amplitude=st.floats(0.0, 1.0),
    beat_offset_hz=st.floats(-1.5e6, 1.5e6),
    phase_offset=st.floats(0.0, 2.0 * np.pi),
    extra_delay_s=st.floats(0.0, 5e-8),
)
components_strategy = st.lists(component_strategy, min_size=0, max_size=12)

COMMON_SETTINGS = settings(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def scaled(component: PathComponent, factor: float) -> PathComponent:
    return PathComponent(
        component.distance, component.angle, component.amplitude * factor,
        component.beat_offset_hz, component.phase_offset,
        component.extra_delay_s,
    )


class TestSynthesisProperties:
    @COMMON_SETTINGS
    @given(components=components_strategy,
           factor=st.floats(0.0, 4.0))
    def test_linear_in_amplitude(self, components, factor):
        base = synthesize_frame_vectorized(components, CONFIG, ARRAY, None)
        scaled_frame = synthesize_frame_vectorized(
            [scaled(c, factor) for c in components], CONFIG, ARRAY, None)
        reference = factor * base
        np.testing.assert_allclose(scaled_frame, reference,
                                   atol=1e-9 * max(1.0, factor))

    @COMMON_SETTINGS
    @given(components=components_strategy, seed=st.integers(0, 2**31 - 1))
    def test_permutation_invariant(self, components, seed):
        permuted = list(components)
        np.random.default_rng(seed).shuffle(permuted)
        frame = synthesize_frame_vectorized(components, CONFIG, ARRAY, None)
        frame_permuted = synthesize_frame_vectorized(permuted, CONFIG,
                                                     ARRAY, None)
        np.testing.assert_allclose(frame_permuted, frame, atol=1e-9)

    @COMMON_SETTINGS
    @given(components=components_strategy, seed=st.integers(0, 2**31 - 1))
    def test_deterministic_for_fixed_seed(self, components, seed):
        first = synthesize_frame_vectorized(components, CONFIG, ARRAY,
                                            np.random.default_rng(seed))
        second = synthesize_frame_vectorized(components, CONFIG, ARRAY,
                                             np.random.default_rng(seed))
        np.testing.assert_array_equal(first, second)

    @COMMON_SETTINGS
    @given(components=components_strategy)
    def test_superposition_of_sub_frames(self, components):
        """Splitting a component set in half and summing frames is exact."""
        half = len(components) // 2
        whole = synthesize_frame_vectorized(components, CONFIG, ARRAY, None)
        parts = (synthesize_frame_vectorized(components[:half], CONFIG,
                                             ARRAY, None)
                 + synthesize_frame_vectorized(components[half:], CONFIG,
                                               ARRAY, None))
        np.testing.assert_allclose(parts, whole, atol=1e-9)

    @COMMON_SETTINGS
    @given(per_frame=st.lists(components_strategy, min_size=1, max_size=4))
    def test_sweep_matches_per_frame(self, per_frame):
        sweep = synthesize_frames(per_frame, CONFIG, ARRAY, None)
        for frame, components in zip(sweep, per_frame):
            single = synthesize_frame_vectorized(components, CONFIG,
                                                 ARRAY, None)
            np.testing.assert_allclose(frame, single, atol=1e-9)


def _comparable(result) -> dict:
    """Flatten an experiment result's numeric leaves for equality checks."""
    leaves = {}
    for name, value in vars(result).items():
        if isinstance(value, (int, float, str, bool)):
            leaves[name] = value
        elif isinstance(value, np.ndarray):
            leaves[name] = value.tolist()
        elif (isinstance(value, list)
              and all(isinstance(v, (int, float)) for v in value)):
            leaves[name] = list(value)
    return leaves


class TestParallelRunnerReproducibility:
    @pytest.mark.parametrize("parallel_workers", [4])
    def test_worker_count_does_not_change_results(self, parallel_workers):
        ids = ["fig9", "ext-pulsed"]
        options = {"duration": 3.0}
        serial = run_experiments(ids, fast=True, workers=1, base_seed=7,
                                 **options)
        parallel = run_experiments(ids, fast=True, workers=parallel_workers,
                                   base_seed=7, **options)
        assert [r.experiment_id for r in serial] == ids
        assert [r.experiment_id for r in parallel] == ids
        for run_serial, run_parallel in zip(serial, parallel):
            assert run_serial.options == run_parallel.options
            assert (_comparable(run_serial.result)
                    == _comparable(run_parallel.result))

    def test_seed_spawning_is_position_stable(self):
        assert experiment_seeds(4, 0) == experiment_seeds(4, 0)
        assert experiment_seeds(4, 0)[:2] != experiment_seeds(4, 1)[:2]
        # Seeds depend on list position, not on worker scheduling.
        many = experiment_seeds(8, 123)
        assert len(set(many)) == len(many)

    def test_records_written(self, tmp_path):
        runs = run_experiments(["fig9"], fast=True, workers=1, base_seed=3,
                               duration=3.0, record_dir=str(tmp_path))
        record_file = tmp_path / "fig9.json"
        assert record_file.exists()
        import json

        record = json.loads(record_file.read_text())
        assert record["experiment_id"] == "fig9"
        assert record["elapsed_s"] == pytest.approx(runs[0].elapsed_s)
        assert record["options"]["duration"] == 3.0
        assert record["result_type"] == "Fig9Result"
