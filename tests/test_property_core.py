"""Property-based tests for core invariants outside the NN engine:
geometry, trajectory operations, chirp arithmetic, CDFs, and the
information-theoretic privacy bounds.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.geometry import rigid_align, wrap_angle
from repro.metrics.errors import empirical_cdf
from repro.privacy import OccupancyModel, binomial_pmf
from repro.signal import ChirpConfig
from repro.types import Trajectory

_settings = settings(max_examples=40, deadline=None)

finite_floats = st.floats(-1e3, 1e3, allow_nan=False)

point_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(3, 20), st.just(2)),
    elements=st.floats(-50, 50, allow_nan=False, allow_infinity=False),
)


class TestAngleProperties:
    @_settings
    @given(st.floats(-100.0, 100.0))
    def test_wrap_angle_in_range(self, angle):
        wrapped = float(wrap_angle(angle))
        assert -np.pi <= wrapped < np.pi

    @_settings
    @given(st.floats(-50.0, 50.0))
    def test_wrap_angle_preserves_direction(self, angle):
        wrapped = float(wrap_angle(angle))
        assert np.cos(wrapped) == pytest.approx(np.cos(angle), abs=1e-9)
        assert np.sin(wrapped) == pytest.approx(np.sin(angle), abs=1e-9)


class TestRigidAlignProperties:
    @_settings
    @given(point_arrays, st.floats(-3.0, 3.0), finite_floats, finite_floats)
    def test_exact_recovery_of_rigid_motion(self, points, angle, dx, dy):
        c, s = np.cos(angle), np.sin(angle)
        rotation = np.array([[c, -s], [s, c]])
        target = points @ rotation.T + np.array([dx, dy])
        transform = rigid_align(points, target)
        assert transform.apply(points) == pytest.approx(target, abs=1e-6)

    @_settings
    @given(point_arrays)
    def test_result_is_proper_rotation(self, points):
        target = points[::-1].copy()
        transform = rigid_align(points, target)
        rotation = transform.rotation
        assert rotation.T @ rotation == pytest.approx(np.eye(2), abs=1e-9)
        assert np.linalg.det(rotation) == pytest.approx(1.0, abs=1e-9)


class TestTrajectoryProperties:
    @_settings
    @given(point_arrays, st.floats(0.05, 2.0))
    def test_path_length_invariant_under_rigid_motion(self, points, dt):
        trajectory = Trajectory(points, dt=dt)
        moved = trajectory.rotated(1.234).translated([5.0, -7.0])
        assert moved.path_length() == pytest.approx(
            trajectory.path_length(), rel=1e-9, abs=1e-9
        )

    @_settings
    @given(point_arrays, st.floats(0.05, 2.0))
    def test_motion_range_invariant_under_rigid_motion(self, points, dt):
        trajectory = Trajectory(points, dt=dt)
        moved = trajectory.rotated(-0.777).translated([1.0, 2.0])
        assert moved.motion_range() == pytest.approx(
            trajectory.motion_range(), rel=1e-9, abs=1e-9
        )

    @_settings
    @given(point_arrays, st.integers(2, 40))
    def test_resampling_never_extends_bounds(self, points, num_points):
        trajectory = Trajectory(points, dt=0.5)
        resampled = trajectory.resampled(num_points)
        margin = 1e-9
        assert resampled.points[:, 0].max() <= points[:, 0].max() + margin
        assert resampled.points[:, 0].min() >= points[:, 0].min() - margin

    @_settings
    @given(point_arrays)
    def test_polar_roundtrip(self, points):
        trajectory = Trajectory(points, dt=1.0)
        origin = (1.5, -2.5)
        back = Trajectory.from_polar(trajectory.to_polar(origin), dt=1.0,
                                     origin=origin)
        assert back.points == pytest.approx(trajectory.points, abs=1e-6)


class TestChirpProperties:
    @_settings
    @given(st.floats(0.1, 60.0))
    def test_distance_beat_roundtrip(self, distance):
        chirp = ChirpConfig()
        beat = chirp.distance_to_beat_frequency(distance)
        assert chirp.beat_frequency_to_distance(beat) == pytest.approx(
            distance, rel=1e-12
        )

    @_settings
    @given(st.floats(0.1, 30.0), st.floats(0.1, 30.0))
    def test_switch_frequency_additive(self, d1, d2):
        chirp = ChirpConfig()
        combined = chirp.switch_frequency_for_offset(d1 + d2)
        separate = (chirp.switch_frequency_for_offset(d1)
                    + chirp.switch_frequency_for_offset(d2))
        assert combined == pytest.approx(separate, rel=1e-12)


class TestCdfProperties:
    @_settings
    @given(hnp.arrays(np.float64, st.integers(1, 60),
                      elements=st.floats(-100, 100, allow_nan=False)))
    def test_cdf_monotone_and_normalized(self, values):
        ordered, levels = empirical_cdf(values)
        assert np.all(np.diff(ordered) >= 0)
        assert np.all(np.diff(levels) > 0)
        assert levels[-1] == pytest.approx(1.0)
        assert levels[0] > 0


class TestPrivacyProperties:
    @_settings
    @given(st.integers(0, 12), st.floats(0.0, 1.0))
    def test_binomial_pmf_valid(self, n, p):
        pmf = binomial_pmf(n, p)
        assert pmf.shape == (n + 1,)
        assert np.all(pmf >= 0)
        assert pmf.sum() == pytest.approx(1.0)

    @_settings
    @given(st.integers(1, 6), st.floats(0.05, 0.95),
           st.integers(0, 6), st.floats(0.0, 1.0))
    def test_mutual_information_bounds(self, n, p, m, q):
        model = OccupancyModel(n, p, m, q)
        information = model.mutual_information()
        assert 0.0 <= information <= model.entropy_x() + 1e-9

    @_settings
    @given(st.integers(1, 5), st.floats(0.05, 0.95), st.integers(1, 6))
    def test_phantoms_never_increase_leakage(self, n, p, m):
        with_defense = OccupancyModel(n, p, m, 0.5).mutual_information()
        without = OccupancyModel(n, p, 0, 0.5).mutual_information()
        assert with_defense <= without + 1e-9
