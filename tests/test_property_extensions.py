"""Property-based tests for the extension modules: floor plans, delay
lines, and the RF-Protect control arithmetic."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro import constants
from repro.geometry import Rectangle
from repro.reflector import DelayLineTag, ReflectorController, ReflectorPanel
from repro.signal import ChirpConfig
from repro.trajectories.floorplan import FloorPlan, Wall, _segments_intersect

_settings = settings(max_examples=40, deadline=None)

coords = st.floats(0.5, 9.5, allow_nan=False)


class TestSegmentIntersectionProperties:
    @_settings
    @given(coords, coords, coords, coords, coords, coords, coords, coords)
    def test_symmetry(self, ax, ay, bx, by, cx, cy, dx, dy):
        p1, p2 = np.array([ax, ay]), np.array([bx, by])
        q1, q2 = np.array([cx, cy]), np.array([dx, dy])
        assume(not np.allclose(p1, p2) and not np.allclose(q1, q2))
        forward = _segments_intersect(p1, p2, q1, q2)
        backward = _segments_intersect(q1, q2, p1, p2)
        assert forward == backward

    @_settings
    @given(coords, coords, coords, coords)
    def test_segment_intersects_itself(self, ax, ay, bx, by):
        p1, p2 = np.array([ax, ay]), np.array([bx, by])
        assume(not np.allclose(p1, p2))
        assert _segments_intersect(p1, p2, p1, p2)

    @_settings
    @given(coords, coords, st.floats(0.1, 3.0))
    def test_disjoint_parallel_segments(self, x, y, offset):
        p1, p2 = np.array([x, y]), np.array([x + 0.4, y])
        q1 = np.array([x, y + offset])
        q2 = np.array([x + 0.4, y + offset])
        assert not _segments_intersect(p1, p2, q1, q2)


class TestFloorPlanProperties:
    @_settings
    @given(st.floats(1.0, 9.0), st.floats(0.5, 5.5))
    def test_crossing_detection_for_horizontal_walks(self, wall_x, walk_y):
        plan = FloorPlan(Rectangle.from_size(10.0, 6.0),
                         walls=[Wall((wall_x, 0.0), (wall_x, 6.0))])
        left = np.array([wall_x - 0.4, walk_y])
        right = np.array([wall_x + 0.4, walk_y])
        assert plan.step_crosses_wall(left, right)
        # Steps fully on one side never cross.
        assert not plan.step_crosses_wall(left, left + np.array([-0.3, 0.1]))


class TestControlArithmeticProperties:
    @_settings
    @given(st.floats(2.5, 6.0), st.floats(-1.0, 1.0))
    def test_commanded_ghost_reconstructs_exactly(self, ghost_range, lateral):
        """Controller inverse: apparent position == commanded position when
        the nominal radar assumption is exact and angles are unquantized.

        With quantized panel angles the reconstruction error is bounded by
        the angular step times the range.
        """
        panel = ReflectorPanel((5.0, 1.3), wall_angle=0.0,
                               normal_angle=np.pi / 2)
        chirp = ChirpConfig()
        controller = ReflectorController(panel, chirp)
        radar = controller.radar_position
        ghost = radar + np.array([lateral, ghost_range])
        command = controller.command_for_point(ghost, 0.0)

        antenna = panel.antenna_position(command.antenna_index)
        path = float(np.linalg.norm(antenna - radar))
        offset = float(chirp.offset_for_switch_frequency(command.switch_frequency))
        direction = (antenna - radar) / path
        apparent = radar + (path + offset) * direction

        angles = panel.antenna_angles()
        angular_step = float(np.abs(np.diff(angles)).max())
        bound = angular_step * float(np.linalg.norm(ghost - radar)) + 1e-6
        assert np.linalg.norm(apparent - ghost) <= bound

    @_settings
    @given(st.integers(0, 31))
    def test_delay_line_distance_roundtrip(self, line_index):
        panel = ReflectorPanel((5.0, 1.3), wall_angle=0.0,
                               normal_angle=np.pi / 2)
        tag = DelayLineTag(panel, num_lines=32, line_spacing_m=0.15)
        delay = tag.line_delay(line_index)
        distance = delay * constants.SPEED_OF_LIGHT / 2.0
        assert distance == pytest.approx((line_index + 1) * 0.15, rel=1e-12)
