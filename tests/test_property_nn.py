"""Property-based tests (hypothesis) for the autograd engine.

Every sampled computation graph must satisfy: autograd gradient ==
central-difference gradient. This is the load-bearing invariant of
`repro.nn` — if it holds for arbitrary shapes and op chains, GAN training
gradients are trustworthy.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor
from repro.nn import functional as F
from tests.test_nn_tensor import numerical_gradient

_settings = settings(max_examples=25, deadline=None)


def small_arrays(min_side=1, max_side=4, max_dims=2):
    return hnp.arrays(
        dtype=np.float64,
        shape=hnp.array_shapes(min_dims=1, max_dims=max_dims,
                               min_side=min_side, max_side=max_side),
        elements=st.floats(-2.0, 2.0, allow_nan=False),
    )


def assert_gradient_matches(build_loss, array, tolerance=1e-5):
    tensor = Tensor(array, requires_grad=True)
    build_loss(tensor).backward()
    numeric = numerical_gradient(
        lambda: float(build_loss(Tensor(array)).data), array
    )
    assert tensor.grad == pytest.approx(numeric, abs=tolerance)


class TestElementwiseProperties:
    @_settings
    @given(small_arrays())
    def test_tanh_gradient(self, array):
        assert_gradient_matches(lambda x: x.tanh().sum(), array)

    @_settings
    @given(small_arrays())
    def test_sigmoid_gradient(self, array):
        assert_gradient_matches(lambda x: x.sigmoid().sum(), array)

    @_settings
    @given(small_arrays())
    def test_exp_gradient(self, array):
        assert_gradient_matches(lambda x: x.exp().sum(), array, tolerance=1e-4)

    @_settings
    @given(small_arrays())
    def test_square_gradient(self, array):
        assert_gradient_matches(lambda x: (x ** 2.0).sum(), array)

    @_settings
    @given(small_arrays())
    def test_chained_composite_gradient(self, array):
        assert_gradient_matches(
            lambda x: (x.tanh() * x.sigmoid() + x).mean(), array
        )


class TestBroadcastProperties:
    @_settings
    @given(
        hnp.arrays(np.float64, (3, 4), elements=st.floats(-2, 2)),
        hnp.arrays(np.float64, (4,), elements=st.floats(-2, 2)),
    )
    def test_add_broadcast_gradients(self, a, b):
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        ((ta + tb) ** 2.0).sum().backward()
        numeric_a = numerical_gradient(
            lambda: float(((Tensor(a) + Tensor(b)) ** 2.0).sum().data), a
        )
        numeric_b = numerical_gradient(
            lambda: float(((Tensor(a) + Tensor(b)) ** 2.0).sum().data), b
        )
        assert ta.grad == pytest.approx(numeric_a, abs=1e-5)
        assert tb.grad == pytest.approx(numeric_b, abs=1e-5)

    @_settings
    @given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4))
    def test_matmul_gradients_all_shapes(self, rows, inner, cols):
        rng = np.random.default_rng(rows * 16 + inner * 4 + cols)
        a = rng.standard_normal((rows, inner))
        b = rng.standard_normal((inner, cols))
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        (ta @ tb).sum().backward()
        numeric_a = numerical_gradient(
            lambda: float((Tensor(a) @ Tensor(b)).sum().data), a
        )
        assert ta.grad == pytest.approx(numeric_a, abs=1e-5)


class TestLstmCellProperty:
    @_settings
    @given(st.integers(1, 5), st.integers(1, 4))
    def test_fused_cell_gradient(self, batch, hidden):
        rng = np.random.default_rng(batch * 8 + hidden)
        gates = rng.standard_normal((batch, 4 * hidden))
        c_prev = rng.standard_normal((batch, hidden))

        tg = Tensor(gates, requires_grad=True)
        tc = Tensor(c_prev, requires_grad=True)
        h, c = F.lstm_cell(tg, tc)
        ((h ** 2.0).sum() + (c ** 2.0).sum()).backward()

        def loss():
            h2, c2 = F.lstm_cell(Tensor(gates), Tensor(c_prev))
            return float(((h2 ** 2.0).sum() + (c2 ** 2.0).sum()).data)

        assert tg.grad == pytest.approx(numerical_gradient(loss, gates),
                                        abs=1e-5)
        assert tc.grad == pytest.approx(numerical_gradient(loss, c_prev),
                                        abs=1e-5)


class TestLossProperties:
    @_settings
    @given(
        hnp.arrays(np.float64, (4, 1), elements=st.floats(-8, 8)),
        hnp.arrays(np.float64, (4, 1), elements=st.floats(0, 1)),
    )
    def test_bce_nonnegative_and_finite(self, logits, targets):
        loss = F.bce_with_logits(Tensor(logits), targets)
        assert np.isfinite(loss.item())
        assert loss.item() >= 0.0

    @_settings
    @given(hnp.arrays(np.float64, (4, 1), elements=st.floats(-8, 8)))
    def test_bce_gradient_bounded(self, logits):
        # d/dx softplus(x) - t*x = sigmoid(x) - t, always within [-1, 1];
        # divided by element count by the mean.
        tensor = Tensor(logits, requires_grad=True)
        F.bce_with_logits(tensor, np.full((4, 1), 0.5)).backward()
        assert np.all(np.abs(tensor.grad) <= 1.0)
