"""Property suite pinning the fused LSTM sequence kernel to the naive path.

The fused :func:`repro.nn.functional.lstm_sequence` op is only allowed to
exist because it is indistinguishable from the per-step reference: for any
shape, dtype, initial state, and loss, forward outputs and every gradient
(inputs, weights, bias, initial state) must agree within dtype-matched
tolerances. Hypothesis sweeps T×B×H (and layer counts through the `LSTM`
wrapper); finite differences pin the fused backward to calculus itself on
small float64 shapes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import LSTM, Tensor, dtype_scope, sequence_backend_scope
from repro.nn.functional import flip_sequence, lstm_sequence, repeat_sequence
from repro.nn.recurrent import LSTMCell
from tests.test_nn_tensor import numerical_gradient

#: Forward/backward agreement tolerance per dtype. float64 disagreement is
#: pure summation-order noise; float32 adds rounding of every intermediate.
TOLERANCES = {"float64": 1e-9, "float32": 3e-4}


def _lstm_case(seed: int, seq_len: int, batch: int, hidden: int,
               in_dim: int, num_layers: int, dtype: str):
    """Build an LSTM + input pair deterministically for one dtype."""
    with dtype_scope(dtype):
        lstm = LSTM(in_dim, hidden, np.random.default_rng(seed),
                    num_layers=num_layers)
        data = np.random.default_rng(seed + 1).standard_normal(
            (seq_len, batch, in_dim))
        inputs = Tensor(data, requires_grad=True)
    return lstm, inputs


def _run(lstm: LSTM, inputs: Tensor, backend: str):
    """One forward+backward; returns (output, input grad, param grads)."""
    lstm.zero_grad()
    inputs.zero_grad()
    with sequence_backend_scope(backend):
        out = lstm.forward_sequence(inputs)
    # A non-uniform loss so every timestep's gradient path is distinct.
    weights = Tensor(
        np.linspace(0.5, 1.5, out.size).reshape(out.shape),
        dtype=out.dtype,
    )
    (out * weights).mean().backward()
    grads = [p.grad.copy() for p in lstm.parameters()]
    assert inputs.grad is not None
    return out.data.copy(), inputs.grad.copy(), grads


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    seq_len=st.integers(1, 8),
    batch=st.integers(1, 4),
    hidden=st.integers(1, 6),
    in_dim=st.integers(1, 5),
    num_layers=st.integers(1, 2),
    dtype=st.sampled_from(["float64", "float32"]),
)
def test_fused_matches_naive_forward_and_backward(
        seed, seq_len, batch, hidden, in_dim, num_layers, dtype):
    tol = TOLERANCES[dtype]
    lstm, inputs = _lstm_case(seed, seq_len, batch, hidden, in_dim,
                              num_layers, dtype)
    out_n, gx_n, gp_n = _run(lstm, inputs, "naive")
    out_f, gx_f, gp_f = _run(lstm, inputs, "fused")
    assert out_f.dtype == out_n.dtype == np.dtype(dtype)
    np.testing.assert_allclose(out_f, out_n, atol=tol, rtol=tol)
    np.testing.assert_allclose(gx_f, gx_n, atol=tol, rtol=tol)
    for grad_f, grad_n in zip(gp_f, gp_n):
        np.testing.assert_allclose(grad_f, grad_n, atol=tol, rtol=tol)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    seq_len=st.integers(2, 6),
    batch=st.integers(1, 3),
    hidden=st.integers(1, 4),
)
def test_fused_matches_naive_with_nonzero_initial_state(
        seed, seq_len, batch, hidden):
    rng = np.random.default_rng(seed)
    lstm = LSTM(3, hidden, rng, num_layers=1)
    inputs = Tensor(rng.standard_normal((seq_len, batch, 3)),
                    requires_grad=True)
    results = {}
    for backend in ("naive", "fused"):
        lstm.zero_grad()
        inputs.zero_grad()
        h0 = Tensor(np.random.default_rng(seed + 2).standard_normal(
            (batch, hidden)), requires_grad=True)
        c0 = Tensor(np.random.default_rng(seed + 3).standard_normal(
            (batch, hidden)), requires_grad=True)
        with sequence_backend_scope(backend):
            out = lstm.forward_sequence(inputs, [(h0, c0)])
        out.pow(2.0).mean().backward()
        assert h0.grad is not None and c0.grad is not None
        results[backend] = (out.data.copy(), h0.grad.copy(), c0.grad.copy())
    for a, b in zip(results["naive"], results["fused"]):
        np.testing.assert_allclose(b, a, atol=1e-9, rtol=1e-9)


def test_lstm_sequence_gradients_match_finite_differences():
    """Pin every parent's fused BPTT gradient to central differences."""
    rng = np.random.default_rng(0)
    seq_len, batch, in_dim, hidden = 4, 2, 3, 3
    arrays = {
        "inputs": rng.standard_normal((seq_len, batch, in_dim)),
        "w_ih": rng.standard_normal((in_dim, 4 * hidden)) * 0.4,
        "w_hh": rng.standard_normal((hidden, 4 * hidden)) * 0.4,
        "bias": rng.standard_normal(4 * hidden) * 0.2,
        "h0": rng.standard_normal((batch, hidden)) * 0.5,
        "c0": rng.standard_normal((batch, hidden)) * 0.5,
    }

    def loss_value() -> float:
        out = lstm_sequence(*(Tensor(arrays[k]) for k in
                              ("inputs", "w_ih", "w_hh", "bias", "h0", "c0")))
        return float(out.pow(2.0).mean().data)

    tensors = {k: Tensor(v, requires_grad=True) for k, v in arrays.items()}
    out = lstm_sequence(tensors["inputs"], tensors["w_ih"], tensors["w_hh"],
                        tensors["bias"], tensors["h0"], tensors["c0"])
    out.pow(2.0).mean().backward()
    for name, array in arrays.items():
        numeric = numerical_gradient(loss_value, array)
        assert tensors[name].grad == pytest.approx(numeric, abs=1e-7), (
            f"fused gradient mismatch for {name}"
        )


def test_repeat_sequence_matches_stack_and_sums_gradient():
    rng = np.random.default_rng(1)
    x = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
    out = repeat_sequence(x, 5)
    assert out.shape == (5, 3, 4)
    np.testing.assert_array_equal(out.data[2], x.data)
    weights = np.arange(out.size, dtype=np.float64).reshape(out.shape)
    (out * Tensor(weights)).sum().backward()
    np.testing.assert_allclose(x.grad, weights.sum(axis=0))


def test_flip_sequence_reverses_time_and_gradient():
    rng = np.random.default_rng(2)
    x = Tensor(rng.standard_normal((4, 2, 3)), requires_grad=True)
    out = flip_sequence(x)
    np.testing.assert_array_equal(out.data, x.data[::-1])
    weights = np.arange(out.size, dtype=np.float64).reshape(out.shape)
    (out * Tensor(weights)).sum().backward()
    np.testing.assert_allclose(x.grad, weights[::-1])


def test_float32_run_stays_float32_end_to_end():
    """No silent widening anywhere in the fused float32 scan."""
    with dtype_scope("float32"):
        lstm = LSTM(4, 5, np.random.default_rng(0), num_layers=2)
        x = Tensor(np.random.default_rng(1).standard_normal((3, 2, 4)),
                   requires_grad=True)
        with sequence_backend_scope("fused"):
            out = lstm.forward_sequence(x)
        out.mean().backward()
        assert out.dtype == np.float32
        assert x.grad is not None and x.grad.dtype == np.float32
        for p in lstm.parameters():
            assert p.data.dtype == np.float32
            assert p.grad is not None and p.grad.dtype == np.float32


def test_cell_initial_state_follows_parameter_dtype():
    with dtype_scope("float32"):
        cell = LSTMCell(3, 4, np.random.default_rng(0))
    h, c = cell.initial_state(2)
    assert h.dtype == np.float32
    assert c.dtype == np.float32
