"""Property tests pinning the vectorized greedy peak suppression.

``find_spectral_peaks`` and ``detect_peaks_2d`` replaced their quadratic
"test every candidate against every accepted peak" loops with blocked-mask
stamping and running power-floor arrays. These tests re-implement the
original O(P^2) acceptance loops verbatim and assert, over randomized
spectra and maps (including heavy ties), that the shipped functions return
exactly the same peaks in the same order.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.signal.detection import PeakDetection, detect_peaks_2d
from repro.signal.spectral import find_spectral_peaks

_settings = settings(max_examples=60, deadline=None)

# Integer-valued power levels on a coarse grid force frequent ties, the
# regime where an order-dependent rewrite would diverge first.
spectra = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(3, 64),
    elements=st.integers(0, 30).map(float),
)

power_maps = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(3, 14), st.integers(3, 14)),
    elements=st.integers(0, 40).map(float),
)


def reference_find_spectral_peaks(power, *, min_height=0.0, min_separation=1,
                                  max_peaks=None):
    """The pre-vectorization quadratic acceptance loop, verbatim."""
    spectrum = np.asarray(power, dtype=float)
    if spectrum.size < 3:
        return []
    interior = spectrum[1:-1]
    is_peak = (interior > spectrum[:-2]) & (interior >= spectrum[2:])
    candidates = np.nonzero(is_peak & (interior >= min_height))[0] + 1
    order = candidates[np.argsort(spectrum[candidates])[::-1]]
    accepted = []
    for idx in order:
        if all(abs(idx - kept) >= min_separation for kept in accepted):
            accepted.append(int(idx))
            if max_peaks is not None and len(accepted) >= max_peaks:
                break
    return accepted


def reference_detect_peaks_2d(power_map, *, threshold, max_peaks=None,
                              min_range_separation=1, min_angle_separation=1,
                              sidelobe_rejection_db=12.0,
                              sidelobe_range_bins=3,
                              range_sidelobe_rejection_db=20.0,
                              range_sidelobe_angle_bins=5):
    """The pre-vectorization quadratic acceptance loop, verbatim."""
    grid = np.asarray(power_map, dtype=float)
    if grid.shape[0] < 3 or grid.shape[1] < 3:
        return []
    center = grid[1:-1, 1:-1]
    is_max = np.ones_like(center, dtype=bool)
    for dr in (-1, 0, 1):
        for dc in (-1, 0, 1):
            if dr == 0 and dc == 0:
                continue
            neighbour = grid[1 + dr: grid.shape[0] - 1 + dr,
                             1 + dc: grid.shape[1] - 1 + dc]
            is_max &= center >= neighbour
    rows, cols = np.nonzero(is_max & (center > threshold))
    rows = rows + 1
    cols = cols + 1

    sidelobe_ratio = None
    range_sidelobe_ratio = None
    if sidelobe_rejection_db is not None:
        sidelobe_ratio = 10.0 ** (-sidelobe_rejection_db / 10.0)
        range_sidelobe_ratio = 10.0 ** (-range_sidelobe_rejection_db / 10.0)

    order = np.argsort(grid[rows, cols])[::-1]
    accepted = []
    for k in order:
        r, c = int(rows[k]), int(cols[k])
        power = float(grid[r, c])
        clash = any(
            abs(r - p.range_index) < min_range_separation
            and abs(c - p.angle_index) < min_angle_separation
            for p in accepted
        )
        if not clash and sidelobe_ratio is not None:
            clash = any(
                (abs(r - p.range_index) <= sidelobe_range_bins
                 and power < p.power * sidelobe_ratio)
                or (abs(c - p.angle_index) <= range_sidelobe_angle_bins
                    and power < p.power * range_sidelobe_ratio)
                for p in accepted
            )
        if clash:
            continue
        accepted.append(PeakDetection(r, c, power))
        if max_peaks is not None and len(accepted) >= max_peaks:
            break
    return accepted


class TestSpectralPeakParity:
    @_settings
    @given(spectrum=spectra,
           min_separation=st.integers(1, 12),
           min_height=st.integers(0, 20).map(float),
           max_peaks=st.one_of(st.none(), st.integers(1, 6)))
    def test_matches_quadratic_reference(self, spectrum, min_separation,
                                         min_height, max_peaks):
        ours = find_spectral_peaks(spectrum, min_height=min_height,
                                   min_separation=min_separation,
                                   max_peaks=max_peaks)
        reference = reference_find_spectral_peaks(
            spectrum, min_height=min_height, min_separation=min_separation,
            max_peaks=max_peaks)
        assert ours == reference


class TestPeak2dParity:
    @_settings
    @given(grid=power_maps,
           threshold=st.integers(0, 25).map(float),
           min_range_separation=st.integers(1, 5),
           min_angle_separation=st.integers(1, 5),
           max_peaks=st.one_of(st.none(), st.integers(1, 5)),
           sidelobe_rejection_db=st.one_of(st.none(),
                                           st.floats(1.0, 30.0)),
           sidelobe_range_bins=st.integers(0, 5),
           range_sidelobe_rejection_db=st.floats(1.0, 30.0),
           range_sidelobe_angle_bins=st.integers(0, 6))
    def test_matches_quadratic_reference(self, grid, threshold,
                                         min_range_separation,
                                         min_angle_separation, max_peaks,
                                         sidelobe_rejection_db,
                                         sidelobe_range_bins,
                                         range_sidelobe_rejection_db,
                                         range_sidelobe_angle_bins):
        kwargs = dict(
            threshold=threshold,
            max_peaks=max_peaks,
            min_range_separation=min_range_separation,
            min_angle_separation=min_angle_separation,
            sidelobe_rejection_db=sidelobe_rejection_db,
            sidelobe_range_bins=sidelobe_range_bins,
            range_sidelobe_rejection_db=range_sidelobe_rejection_db,
            range_sidelobe_angle_bins=range_sidelobe_angle_bins,
        )
        ours = detect_peaks_2d(grid, **kwargs)
        reference = reference_detect_peaks_2d(grid, **kwargs)
        assert len(ours) == len(reference)
        for peak, ref_peak in zip(ours, reference):
            assert peak.range_index == ref_peak.range_index
            assert peak.angle_index == ref_peak.angle_index
            assert peak.power == ref_peak.power
