"""Property-based tests for activity programs and scenario seeding.

Three invariants the scenario layer promises by construction, checked
over randomized programs, rooms, and seeds:

- synthesized programs never leave the floorplan's walkable area;
- the realized step speed never exceeds :func:`program_speed_limit`;
- built content is a pure function of (spec, seed) and each human's
  stream is independent of how many humans follow — the property that
  makes parallel fan-out worker-count independent.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.geometry import Rectangle
from repro.scenarios import FloorplanSpec, HumanSpec, ScenarioSpec, build
from repro.scenarios.catalog import OFFICE_MULTIPATH
from repro.trajectories import (
    ActivityProgram,
    ProgramStep,
    activity_names,
    program_speed_limit,
    synthesize_program,
)

_settings = settings(max_examples=25, deadline=None)

programs = st.lists(
    st.tuples(st.sampled_from(activity_names()),
              st.floats(0.2, 3.0, allow_nan=False)),
    min_size=1, max_size=4,
).map(lambda pairs: ActivityProgram(
    tuple(ProgramStep(name, fraction) for name, fraction in pairs)))

rooms = st.tuples(st.floats(4.0, 18.0), st.floats(4.0, 12.0)).map(
    lambda size: Rectangle.from_size(*size))

seeds = st.integers(0, 2**31 - 1)


def _spec_for(programs_list: list[ActivityProgram]) -> ScenarioSpec:
    return ScenarioSpec(
        name="prop-spec",
        description="property-test spec",
        floorplan=FloorplanSpec(size=(9.0, 7.0)),
        multipath=OFFICE_MULTIPATH,
        humans=tuple(HumanSpec(program=program)
                     for program in programs_list),
        duration_s=6.0,
        num_points=30,
    )


class TestProgramSynthesis:
    @_settings
    @given(programs, rooms, seeds)
    def test_trace_stays_in_walkable_area(self, program, room, seed):
        margin = 0.3
        trajectory = synthesize_program(
            program, room, num_points=40, duration=8.0,
            rng=np.random.default_rng(seed), margin=margin)
        assert room.contains_all(trajectory.points, margin=margin - 1e-9)

    @_settings
    @given(programs, rooms, seeds)
    def test_realized_speed_respects_program_limit(self, program, room,
                                                   seed):
        num_points, duration = 40, 8.0
        trajectory = synthesize_program(
            program, room, num_points=num_points, duration=duration,
            rng=np.random.default_rng(seed))
        dt = duration / (num_points - 1)
        steps = np.diff(trajectory.points, axis=0)
        speeds = np.linalg.norm(steps, axis=1) / dt
        assert speeds.max() <= program_speed_limit(program) + 1e-9

    @_settings
    @given(programs, seeds)
    def test_synthesis_is_seed_deterministic(self, program, seed):
        room = Rectangle.from_size(9.0, 7.0)
        a = synthesize_program(program, room, num_points=30, duration=6.0,
                               rng=np.random.default_rng(seed))
        b = synthesize_program(program, room, num_points=30, duration=6.0,
                               rng=np.random.default_rng(seed))
        np.testing.assert_array_equal(a.points, b.points)


class TestBuildSeedProperties:
    @_settings
    @given(st.lists(programs, min_size=1, max_size=3), seeds)
    def test_built_content_is_pure_in_spec_and_seed(self, programs_list,
                                                    seed):
        spec = _spec_for(programs_list)
        first = build(spec, seed=seed).human_trajectories()
        second = build(spec, seed=seed).human_trajectories()
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a.points, b.points)

    @_settings
    @given(st.lists(programs, min_size=2, max_size=3), programs, seeds)
    def test_human_streams_independent_of_later_humans(self, programs_list,
                                                       extra_program, seed):
        """Dropping or adding trailing humans never changes earlier ones —
        the guarantee that makes any worker fan-out bit-reproducible."""
        spec = _spec_for(programs_list)
        extended = dataclasses.replace(
            spec, humans=spec.humans + (HumanSpec(program=extra_program),))
        base = build(spec, seed=seed).human_trajectories()
        more = build(extended, seed=seed).human_trajectories()
        assert len(more) == len(base) + 1
        for a, b in zip(base, more):
            np.testing.assert_array_equal(a.points, b.points)
