"""Property suite for the incremental tracker: the streaming≡batch wall.

The tracker's central contract is that *streaming is batch*: ingesting a
sweep one frame at a time through :class:`StreamingTracker` produces
exactly the tracks — IDs, raw positions, ages, miss counts — of handing
the whole sweep to the batch driver. Today that holds by construction
(``extract_tracks``/``track_detections`` are loops over the streaming
core); this suite pins it against any future divergence (a batch fast
path, a smarter streaming association) with hypothesis-generated scenes:
1–4 targets crossing through a common point, frame-time jitter, dropped
frames, measurement noise.

Also pinned here: association is independent of detection input order
(canonical ordering), checkpoint/restore is exact mid-stream (including a
JSON round trip), and the in-repo Hungarian fallback is cost-equal to
``scipy.optimize.linear_sum_assignment``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import TrackingError
from repro.radar.tracker import (
    StreamingTracker,
    TrackerConfig,
    hungarian_assignment,
    track_detections,
)

try:
    from scipy.optimize import linear_sum_assignment
except ImportError:  # pragma: no cover - container always has scipy
    linear_sum_assignment = None

COMMON_SETTINGS = settings(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Short-scene tracker config: property scenes are 10-30 frames, so the
#: track-length and consistency floors come down accordingly.
CONFIG = TrackerConfig(min_track_points=3, min_hit_ratio=0.2,
                       cluster_radius=0.3, gate_distance=1.0)

Frame = tuple[float, list[tuple[np.ndarray, float]]]


@st.composite
def scenarios(draw) -> list[Frame]:
    """Detection frames of 1-4 targets crossing through a common point.

    Every target's constant-velocity path passes through one shared
    crossing point at the scene's midpoint time, so multi-target scenes
    exercise the association-under-ambiguity regime rather than
    well-separated tracks. Jittered frame intervals, per-(frame, target)
    dropouts, and measurement noise come from one seeded generator.
    """
    num_targets = draw(st.integers(min_value=1, max_value=4))
    num_frames = draw(st.integers(min_value=10, max_value=30))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    dt_jitter = draw(st.floats(min_value=0.0, max_value=0.4))
    drop_rate = draw(st.floats(min_value=0.0, max_value=0.25))
    rng = np.random.default_rng(seed)

    dts = 0.1 * (1.0 + dt_jitter * rng.uniform(-0.5, 0.5, num_frames - 1))
    times = np.concatenate([[0.0], np.cumsum(dts)])
    t_mid = times[num_frames // 2]
    crossing_point = rng.uniform([2.0, 2.0], [6.0, 4.0])
    velocities = rng.uniform(-0.6, 0.6, (num_targets, 2))
    powers = rng.uniform(5.0, 50.0, num_targets)

    frames: list[Frame] = []
    for t in times:
        detections = []
        for k in range(num_targets):
            if rng.uniform() < drop_rate:
                continue
            truth = crossing_point + velocities[k] * (t - t_mid)
            measured = truth + rng.normal(0.0, 0.03, 2)
            detections.append((measured, float(powers[k])))
        frames.append((float(t), detections))
    return frames


def track_state(track) -> tuple:
    """Everything observable about a track, for exact comparison."""
    return (
        track.track_id,
        tuple(track.times),
        tuple(tuple(float(x) for x in p) for p in track.raw_positions),
        tuple(track.powers),
        track.age,
        track.misses,
        track.total_misses,
        tuple(float(x) for x in track.filter.state),
    )


def stream(frames: list[Frame],
           config: TrackerConfig = CONFIG) -> StreamingTracker:
    tracker = StreamingTracker(config=config)
    for time, detections in frames:
        tracker.ingest_detections(time, detections)
    return tracker


class TestStreamingEqualsBatch:
    @COMMON_SETTINGS
    @given(frames=scenarios())
    def test_stream_equals_batch_track_for_track(self, frames):
        batch_tracks = track_detections(frames, CONFIG)
        stream_tracks = stream(frames).tracks()
        assert ([track_state(t) for t in stream_tracks]
                == [track_state(t) for t in batch_tracks])

    @COMMON_SETTINGS
    @given(frames=scenarios())
    def test_stream_equals_batch_greedy_association(self, frames):
        config = TrackerConfig(min_track_points=3, min_hit_ratio=0.2,
                               cluster_radius=0.3, association="greedy")
        batch_tracks = track_detections(frames, config)
        stream_tracks = stream(frames, config).tracks()
        assert ([track_state(t) for t in stream_tracks]
                == [track_state(t) for t in batch_tracks])

    @COMMON_SETTINGS
    @given(frames=scenarios())
    def test_tracks_view_is_non_destructive(self, frames):
        """Reading tracks() after every frame never changes the outcome."""
        tracker = StreamingTracker(config=CONFIG)
        for time, detections in frames:
            tracker.ingest_detections(time, detections)
            tracker.tracks()
        assert ([track_state(t) for t in tracker.tracks()]
                == [track_state(t) for t in track_detections(frames, CONFIG)])


class TestCheckpointRestore:
    @COMMON_SETTINGS
    @given(frames=scenarios(), data=st.data())
    def test_checkpoint_midstream_is_exact(self, frames, data):
        split = data.draw(st.integers(min_value=0, max_value=len(frames)),
                          label="split")
        uninterrupted = stream(frames)

        resumed = StreamingTracker(config=CONFIG)
        for time, detections in frames[:split]:
            resumed.ingest_detections(time, detections)
        # Round-trip the blob through JSON text: Python float repr is
        # exact, so a parked-and-restored session loses nothing.
        blob = json.loads(json.dumps(resumed.checkpoint()))
        resumed = StreamingTracker.from_checkpoint(blob)
        for time, detections in frames[split:]:
            resumed.ingest_detections(time, detections)

        assert ([track_state(t) for t in resumed.tracks()]
                == [track_state(t) for t in uninterrupted.tracks()])
        assert resumed.checkpoint() == uninterrupted.checkpoint()

    def test_checkpoint_version_is_enforced(self):
        tracker = StreamingTracker(config=CONFIG)
        blob = tracker.checkpoint()
        blob["version"] = 999
        with pytest.raises(TrackingError):
            StreamingTracker.from_checkpoint(blob)


class TestOrderIndependence:
    @COMMON_SETTINGS
    @given(frames=scenarios(), seed=st.integers(0, 2**31 - 1))
    def test_detection_order_never_matters(self, frames, seed):
        """Permuting every frame's detection list changes nothing.

        Not even track IDs: spawn order is canonical, so the adversary's
        persistent identities are a function of the detection sets alone.
        """
        rng = np.random.default_rng(seed)
        permuted = []
        for time, detections in frames:
            shuffled = list(detections)
            rng.shuffle(shuffled)
            permuted.append((time, shuffled))
        original = stream(frames).tracks()
        reordered = stream(permuted).tracks()
        assert ([track_state(t) for t in reordered]
                == [track_state(t) for t in original])

    def test_frames_must_arrive_in_time_order(self):
        tracker = StreamingTracker(config=CONFIG)
        tracker.ingest_detections(1.0, [])
        with pytest.raises(TrackingError):
            tracker.ingest_detections(0.5, [])


class TestHungarianFallback:
    @COMMON_SETTINGS
    @given(rows=st.integers(1, 7), cols=st.integers(1, 7),
           seed=st.integers(0, 2**31 - 1))
    def test_cost_equals_scipy(self, rows, cols, seed):
        if linear_sum_assignment is None:
            pytest.skip("scipy not available")
        cost = np.random.default_rng(seed).uniform(0.0, 10.0, (rows, cols))
        ours_r, ours_c = hungarian_assignment(cost)
        ref_r, ref_c = linear_sum_assignment(cost)
        assert cost[ours_r, ours_c].sum() == pytest.approx(
            cost[ref_r, ref_c].sum(), abs=1e-9
        )

    @COMMON_SETTINGS
    @given(rows=st.integers(1, 7), cols=st.integers(1, 7),
           seed=st.integers(0, 2**31 - 1))
    def test_assignment_is_valid(self, rows, cols, seed):
        cost = np.random.default_rng(seed).uniform(0.0, 10.0, (rows, cols))
        assigned_r, assigned_c = hungarian_assignment(cost)
        assert len(assigned_r) == min(rows, cols)
        assert len(set(assigned_r.tolist())) == len(assigned_r)
        assert len(set(assigned_c.tolist())) == len(assigned_c)
        assert np.all((assigned_r >= 0) & (assigned_r < rows))
        assert np.all((assigned_c >= 0) & (assigned_c < cols))

    def test_empty_and_invalid_inputs(self):
        empty_r, empty_c = hungarian_assignment(np.empty((0, 3)))
        assert len(empty_r) == 0 and len(empty_c) == 0
        with pytest.raises(TrackingError):
            hungarian_assignment(np.zeros(3, dtype=np.float64))
        with pytest.raises(TrackingError):
            hungarian_assignment(
                np.array([[np.inf, 1.0]], dtype=np.float64)
            )
