"""Tests for the pulsed radar (repro.radar.pulsed) and the delay-line tag
(repro.reflector.delay_tag) — the Sec. 13 "New Sensor Types" extension."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ReflectorError
from repro.geometry import Rectangle
from repro.radar import PulsedRadar, PulsedRadarConfig, Scene
from repro.radar.frontend import PathComponent
from repro.reflector import DelayLineTag, ReflectorPanel
from repro.types import Trajectory


@pytest.fixture()
def pulsed_radar():
    return PulsedRadar(PulsedRadarConfig(position=(5.0, 0.1),
                                         axis_angle=0.0,
                                         facing_angle=np.pi / 2))


@pytest.fixture()
def panel():
    return ReflectorPanel((5.0, 1.3), wall_angle=0.0, normal_angle=np.pi / 2)


class TestPulsedRadarConfig:
    def test_range_resolution(self):
        config = PulsedRadarConfig(bandwidth=1.0e9)
        assert config.range_resolution == pytest.approx(0.15, abs=0.001)

    def test_num_samples_covers_window(self):
        config = PulsedRadarConfig(max_range=15.0, sample_rate=4e9)
        window = config.num_samples / config.sample_rate
        assert window >= 2 * 15.0 / 3e8

    @pytest.mark.parametrize("kwargs", [
        {"sample_rate": 1e9, "bandwidth": 1e9},   # under Nyquist
        {"max_range": 0.5, "min_range": 0.6},
        {"num_antennas": 1},
        {"center_frequency": 0.0},
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            PulsedRadarConfig(**kwargs)


class TestPulsedSensing:
    def test_localizes_static_target_after_motion(self, pulsed_radar):
        room = Rectangle.from_size(10.0, 6.6)
        scene = Scene(room)
        walk = Trajectory(np.linspace([3.0, 2.0], [6.0, 4.5], 40),
                          dt=6.0 / 39.0)
        scene.add_human(walk)
        result = pulsed_radar.sense(scene, 6.0, rng=np.random.default_rng(1))
        tracks = result.tracks()
        assert tracks
        errors = [np.linalg.norm(p - walk.position_at(t))
                  for t, p in zip(tracks[0].times, tracks[0].raw_positions)]
        assert np.median(errors) < 0.15

    def test_empty_scene_no_tracks(self, pulsed_radar):
        scene = Scene(Rectangle.from_size(10.0, 6.6))
        scene.add_static((3.0, 3.0), rcs=4.0)
        result = pulsed_radar.sense(scene, 4.0,
                                    rng=np.random.default_rng(2))
        assert result.tracks() == []

    def test_extra_delay_shifts_apparent_range(self, pulsed_radar):
        """The delay-line mechanism: extra delay = extra distance."""
        extra_distance = 3.0
        delay = 2.0 * extra_distance / 3e8 * (3e8 / 299_792_458.0)
        component_near = PathComponent(2.0, np.pi / 2, 0.1)
        component_delayed = PathComponent(2.0, np.pi / 2, 0.1,
                                          extra_delay_s=2.0 * extra_distance
                                          / 299_792_458.0)
        profile_near = pulsed_radar._echo_profile([component_near], None)
        profile_delayed = pulsed_radar._echo_profile([component_delayed], None)
        ranges = pulsed_radar._range_axis()
        peak_near = ranges[int(np.argmax(np.abs(profile_near[0])))]
        peak_delayed = ranges[int(np.argmax(np.abs(profile_delayed[0])))]
        assert peak_near == pytest.approx(2.0, abs=0.1)
        assert peak_delayed == pytest.approx(2.0 + extra_distance, abs=0.1)
        assert delay > 0  # sanity on the helper arithmetic

    def test_beat_offset_does_not_move_pulsed_echo(self, pulsed_radar):
        """The FMCW switching trick is inert against pulse radars."""
        switched = PathComponent(2.0, np.pi / 2, 0.1, beat_offset_hz=40e3)
        profile = pulsed_radar._echo_profile([switched], None)
        ranges = pulsed_radar._range_axis()
        peak = ranges[int(np.argmax(np.abs(profile[0])))]
        assert peak == pytest.approx(2.0, abs=0.1)  # physical, not spoofed

    def test_rejects_bad_duration(self, pulsed_radar):
        scene = Scene(Rectangle.from_size(10.0, 6.6))
        from repro.errors import TrackingError
        with pytest.raises(TrackingError):
            pulsed_radar.sense(scene, 0.0)


class TestDelayLineTag:
    def test_line_delay_arithmetic(self, panel):
        tag = DelayLineTag(panel, num_lines=16, line_spacing_m=0.15)
        # Line k adds (k+1) * 0.15 m of apparent distance.
        delay = tag.line_delay(9)
        assert delay * 299_792_458.0 / 2.0 == pytest.approx(1.5, rel=1e-9)

    def test_line_index_bounds(self, panel):
        tag = DelayLineTag(panel, num_lines=4)
        with pytest.raises(ReflectorError):
            tag.line_delay(4)

    def test_max_offset(self, panel):
        tag = DelayLineTag(panel, num_lines=32, line_spacing_m=0.15)
        assert tag.max_offset_m == pytest.approx(4.8)

    def test_plan_trajectory_quantizes_to_lines(self, panel):
        tag = DelayLineTag(panel)
        ghost = Trajectory(np.linspace([4.5, 4.0], [5.5, 5.0], 20), dt=0.5)
        schedule = tag.plan_trajectory(ghost)
        for command in schedule.commands:
            assert 0 <= command.line_index < tag.num_lines

    def test_plan_rejects_out_of_bank_ghost(self, panel):
        tag = DelayLineTag(panel, num_lines=4, line_spacing_m=0.15)
        far_ghost = Trajectory(np.linspace([5.0, 5.0], [5.0, 6.0], 10),
                               dt=1.0)  # needs ~4 m of offset, bank has 0.6
        with pytest.raises(ReflectorError):
            tag.plan_trajectory(far_ghost)

    def test_spoofs_pulsed_radar_end_to_end(self, pulsed_radar, panel):
        tag = DelayLineTag(panel)
        ghost = Trajectory(np.linspace([4.0, 4.0], [6.0, 5.5], 40),
                           dt=6.0 / 39.0)
        schedule = tag.plan_trajectory(ghost)
        tag.deploy(schedule)
        scene = Scene(Rectangle.from_size(10.0, 6.6))
        scene.add(tag)
        result = pulsed_radar.sense(scene, 6.0,
                                    rng=np.random.default_rng(3))
        trajectories = result.trajectories()
        assert trajectories
        best = trajectories[0]
        n = min(len(best), len(ghost))
        errors = np.linalg.norm(
            best.resampled(n).points - ghost.resampled(n).points, axis=1
        )
        # Accuracy limited by the 0.15 m line quantization.
        assert np.median(errors) < 0.35

    def test_also_spoofs_fmcw_radar(self, panel):
        """True delay works against FMCW too (modulation-agnostic)."""
        from repro.radar import FmcwRadar, RadarConfig
        radar = FmcwRadar(RadarConfig(position=(5.0, 0.1), axis_angle=0.0,
                                      facing_angle=np.pi / 2))
        tag = DelayLineTag(panel)
        ghost = Trajectory(np.linspace([4.0, 4.0], [6.0, 5.5], 40),
                           dt=6.0 / 39.0)
        tag.deploy(tag.plan_trajectory(ghost))
        scene = Scene(Rectangle.from_size(10.0, 6.6))
        scene.add(tag)
        result = radar.sense(scene, 6.0, rng=np.random.default_rng(4))
        trajectories = result.trajectories()
        assert trajectories
        best = trajectories[0]
        n = min(len(best), len(ghost))
        errors = np.linalg.norm(
            best.resampled(n).points - ghost.resampled(n).points, axis=1
        )
        assert np.median(errors) < 0.35

    def test_rejects_bad_construction(self, panel):
        with pytest.raises(ReflectorError):
            DelayLineTag(panel, num_lines=0)
        with pytest.raises(ReflectorError):
            DelayLineTag(panel, line_spacing_m=0.0)
