"""Tests for repro.radar.channel and repro.radar.scene."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SceneError
from repro.geometry import Rectangle
from repro.radar import ChannelModel, HumanTarget, Scene, StaticReflector
from repro.radar.antenna import UniformLinearArray
from repro.radar.channel import MultipathSpec
from repro.radar.config import RadarConfig
from repro.radar.scene import BreathingSpec
from repro.types import Trajectory


@pytest.fixture()
def array():
    return UniformLinearArray(
        RadarConfig(position=(0.0, 0.0), axis_angle=0.0, facing_angle=np.pi / 2)
    )


class TestChannelModel:
    def test_amplitude_fourth_power_law(self):
        channel = ChannelModel()
        near = channel.path_amplitude(2.0)
        far = channel.path_amplitude(4.0)
        assert near / far == pytest.approx(4.0)  # amplitude ~ 1/d^2

    def test_amplitude_scales_with_sqrt_rcs(self):
        channel = ChannelModel()
        assert channel.path_amplitude(3.0, rcs=4.0) == pytest.approx(
            2.0 * channel.path_amplitude(3.0, rcs=1.0)
        )

    def test_reference_calibration(self):
        channel = ChannelModel(reference_amplitude=0.5, reference_distance=2.0)
        assert channel.path_amplitude(2.0) == pytest.approx(0.5)

    def test_rejects_bad_reference(self):
        with pytest.raises(ConfigurationError):
            ChannelModel(reference_amplitude=0.0)

    def test_thermal_noise_statistics(self, rng):
        channel = ChannelModel()
        noise = channel.thermal_noise((20000,), 0.1, rng)
        rms = np.sqrt(np.mean(np.abs(noise) ** 2))
        assert rms == pytest.approx(0.1, rel=0.05)
        assert noise.real.mean() == pytest.approx(0.0, abs=0.01)

    def test_zero_noise(self, rng):
        channel = ChannelModel()
        assert np.all(channel.thermal_noise((5,), 0.0, rng) == 0)

    def test_multipath_disabled_by_default(self, rng):
        channel = ChannelModel()
        assert channel.sample_multipath(5.0, 1.0, 0.1, rng) == []

    def test_multipath_bounces_behind_source(self, rng):
        spec = MultipathSpec(mean_paths=3.0)
        channel = ChannelModel(multipath=spec)
        bounces = []
        for _ in range(50):
            bounces.extend(channel.sample_multipath(5.0, 1.5, 0.1, rng))
        assert bounces, "expected some bounces with mean_paths=3"
        for distance, angle, amplitude in bounces:
            assert distance > 5.0            # excess path only adds distance
            assert 0 < angle < np.pi
            assert amplitude < 0.1           # always weaker than the source

    def test_multipath_spec_validation(self):
        with pytest.raises(ConfigurationError):
            MultipathSpec(relative_amplitude=1.5)
        with pytest.raises(ConfigurationError):
            MultipathSpec(mean_paths=-1.0)


class TestBreathingSpec:
    def test_displacement_bounded_by_amplitude(self):
        spec = BreathingSpec(amplitude=0.006, frequency=0.25)
        times = np.linspace(0, 20, 500)
        displacement = np.array([spec.displacement(t) for t in times])
        assert np.abs(displacement).max() <= 0.006 + 1e-12

    def test_period(self):
        spec = BreathingSpec(frequency=0.5)
        assert spec.displacement(0.0) == pytest.approx(spec.displacement(2.0))

    def test_rejects_bad_values(self):
        with pytest.raises(SceneError):
            BreathingSpec(amplitude=-0.001)
        with pytest.raises(SceneError):
            BreathingSpec(frequency=0.0)


class TestHumanTarget(object):
    def test_path_components_geometry(self, array, rng):
        walk = Trajectory([[2.0, 3.0], [2.0, 4.0]], dt=1.0)
        human = HumanTarget(walk, rcs_fluctuation=0.0,
                            breathing=BreathingSpec(amplitude=1e-9))
        channel = ChannelModel()
        components = human.path_components(0.0, array, channel, rng)
        assert len(components) == 1
        expected_distance, expected_angle = array.polar_of(np.array([2.0, 3.0]))
        assert components[0].distance == pytest.approx(expected_distance,
                                                       abs=1e-6)
        assert components[0].angle == pytest.approx(expected_angle)
        assert components[0].beat_offset_hz == 0.0

    def test_breathing_modulates_distance(self, array, rng):
        static = Trajectory([[0.0, 3.0], [0.0, 3.0]], dt=10.0)
        human = HumanTarget(static, rcs_fluctuation=0.0,
                            breathing=BreathingSpec(amplitude=0.005,
                                                    frequency=0.25))
        channel = ChannelModel()
        d_peak = human.path_components(1.0, array, channel, rng)[0].distance
        d_zero = human.path_components(0.0, array, channel, rng)[0].distance
        assert d_peak != pytest.approx(d_zero, abs=1e-6)
        assert abs(d_peak - d_zero) < 0.01

    def test_rcs_fluctuation_changes_amplitude(self, array, rng):
        walk = Trajectory([[0.0, 3.0], [0.0, 4.0]], dt=1.0)
        human = HumanTarget(walk, rcs_fluctuation=0.3)
        channel = ChannelModel()
        amplitudes = {
            human.path_components(0.0, array, channel, rng)[0].amplitude
            for _ in range(5)
        }
        assert len(amplitudes) > 1

    def test_rejects_bad_rcs(self):
        walk = Trajectory([[0, 0], [1, 1]], dt=1.0)
        with pytest.raises(SceneError):
            HumanTarget(walk, rcs=0.0)
        with pytest.raises(SceneError):
            HumanTarget(walk, rcs_fluctuation=1.0)


class TestStaticReflector:
    def test_constant_across_time(self, array, rng):
        static = StaticReflector((3.0, 4.0), rcs=2.0)
        channel = ChannelModel()
        first = static.path_components(0.0, array, channel, rng)[0]
        later = static.path_components(9.0, array, channel, rng)[0]
        assert first.distance == later.distance
        assert first.amplitude == later.amplitude
        assert first.phase_offset == later.phase_offset

    def test_rejects_bad_position(self):
        with pytest.raises(SceneError):
            StaticReflector((1.0, 2.0, 3.0))


class TestScene:
    def test_add_human_inside_room(self, straight_walk):
        scene = Scene(Rectangle.from_size(10.0, 6.6))
        human = scene.add_human(straight_walk)
        assert human in scene.humans()

    def test_add_human_outside_room_rejected(self):
        scene = Scene(Rectangle.from_size(4.0, 4.0))
        walk = Trajectory([[1.0, 1.0], [9.0, 1.0]], dt=1.0)
        with pytest.raises(SceneError):
            scene.add_human(walk)

    def test_add_static_outside_room_rejected(self):
        scene = Scene(Rectangle.from_size(4.0, 4.0))
        with pytest.raises(SceneError):
            scene.add_static((5.0, 1.0))

    def test_add_rejects_non_entity(self):
        scene = Scene(Rectangle.from_size(4.0, 4.0))
        with pytest.raises(SceneError):
            scene.add("not an entity")

    def test_path_components_aggregates(self, array, rng, straight_walk):
        scene = Scene(Rectangle.from_size(10.0, 6.6))
        scene.add_static((2.0, 2.0))
        scene.add_human(straight_walk)
        components = scene.path_components(0.0, array, rng)
        assert len(components) >= 2
