"""Tests for repro.radar.config and repro.radar.antenna."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.radar import RadarConfig, UniformLinearArray


class TestRadarConfig:
    def test_defaults_match_paper(self):
        config = RadarConfig()
        assert config.num_antennas == 7
        assert config.angular_resolution == pytest.approx(np.pi / 7)

    def test_default_spacing_is_half_wavelength(self):
        config = RadarConfig()
        assert config.spacing == pytest.approx(config.chirp.wavelength / 2)

    def test_explicit_spacing_wins(self):
        config = RadarConfig(antenna_spacing=0.05)
        assert config.spacing == pytest.approx(0.05)

    @pytest.mark.parametrize("kwargs", [
        {"num_antennas": 1},
        {"frame_rate": 0.0},
        {"frame_rate": 1e5},       # frames would overlap the chirp
        {"noise_std": -1.0},
        {"angle_grid_points": 4},
        {"antenna_spacing": 0.0},
        {"min_range": -1.0},
        {"facing_angle": 0.0},     # parallel to the default array axis
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            RadarConfig(**kwargs)

    def test_angle_grid_open_interval(self):
        grid = RadarConfig(angle_grid_points=100).angle_grid()
        assert grid.shape == (100,)
        assert grid[0] > 0.0
        assert grid[-1] < np.pi

    def test_frame_interval(self):
        assert RadarConfig(frame_rate=20.0).frame_interval == pytest.approx(0.05)


class TestArrayGeometry:
    def _array(self, **kwargs):
        defaults = dict(position=(5.0, 0.0), axis_angle=0.0,
                        facing_angle=np.pi / 2)
        defaults.update(kwargs)
        return UniformLinearArray(RadarConfig(**defaults))

    def test_element_positions_centered(self):
        array = self._array()
        elements = array.element_positions()
        assert elements.shape == (7, 2)
        assert elements.mean(axis=0) == pytest.approx([5.0, 0.0])
        spacing = np.linalg.norm(np.diff(elements, axis=0), axis=1)
        assert spacing == pytest.approx(np.full(6, array.spacing))

    def test_angle_to_broadside(self):
        array = self._array()
        # Directly in front (facing +y): angle from the +x axis is pi/2.
        assert array.angle_to(np.array([5.0, 3.0])) == pytest.approx(np.pi / 2)

    def test_angle_to_endfire(self):
        array = self._array()
        assert array.angle_to(np.array([9.0, 0.0])) == pytest.approx(0.0)
        assert array.angle_to(np.array([1.0, 0.0])) == pytest.approx(np.pi)

    def test_angle_rejects_coincident_point(self):
        with pytest.raises(ConfigurationError):
            self._array().angle_to(np.array([5.0, 0.0]))

    def test_polar_roundtrip_via_point_at(self):
        array = self._array()
        target = np.array([7.0, 4.0])
        distance, angle = array.polar_of(target)
        assert array.point_at(distance, angle) == pytest.approx(target)

    def test_point_at_picks_facing_side(self):
        array = self._array()
        point = array.point_at(3.0, np.pi / 2)
        assert point[1] > 0  # facing +y, never behind the wall

    def test_point_at_rejects_negative_distance(self):
        with pytest.raises(ConfigurationError):
            self._array().point_at(-1.0, 1.0)


class TestBeamforming:
    def _array(self):
        return UniformLinearArray(
            RadarConfig(position=(0.0, 0.0), axis_angle=0.0,
                        facing_angle=np.pi / 2)
        )

    def test_beamform_peaks_at_arrival_angle(self):
        array = self._array()
        for true_angle in (0.5, np.pi / 2, 2.2):
            signals = np.exp(1j * array.arrival_phases(true_angle))
            grid = np.linspace(0.05, np.pi - 0.05, 721)
            power = array.beamform(signals, grid, taper=None)
            measured = grid[int(np.argmax(power))]
            assert measured == pytest.approx(true_angle, abs=0.02)

    def test_taper_lowers_sidelobes(self):
        array = self._array()
        true_angle = np.pi / 2
        signals = np.exp(1j * array.arrival_phases(true_angle))
        grid = np.linspace(0.05, np.pi - 0.05, 721)

        def sidelobe_ratio(taper):
            power = array.beamform(signals, grid, taper=taper)
            main = power.max()
            away = np.abs(grid - true_angle) > 0.5
            return power[away].max() / main

        assert sidelobe_ratio("hamming") < sidelobe_ratio(None)

    def test_beamform_2d_signals(self):
        array = self._array()
        signals = np.ones((7, 16), dtype=complex)
        grid = np.linspace(0.1, np.pi - 0.1, 45)
        power = array.beamform(signals, grid)
        assert power.shape == (45, 16)

    def test_beamform_rejects_wrong_antenna_count(self):
        array = self._array()
        with pytest.raises(ConfigurationError):
            array.beamform(np.ones(5, dtype=complex), np.linspace(0.1, 3.0, 8))

    def test_two_sources_both_resolved(self):
        array = self._array()
        a1, a2 = 1.0, 2.0  # separated well beyond pi/K
        signals = (np.exp(1j * array.arrival_phases(a1))
                   + np.exp(1j * array.arrival_phases(a2)))
        grid = np.linspace(0.05, np.pi - 0.05, 721)
        power = array.beamform(signals, grid, taper=None)
        threshold = power.max() * 0.5
        lobes = grid[power > threshold]
        assert np.any(np.abs(lobes - a1) < 0.15)
        assert np.any(np.abs(lobes - a2) < 0.15)
