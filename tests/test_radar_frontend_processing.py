"""Tests for repro.radar.frontend and repro.radar.processing.

These validate the core physics: a PathComponent at distance d produces a
range-FFT peak at d; a beat offset moves the *apparent* distance exactly as
Eq. 3 predicts; background subtraction kills statics and keeps movers.
"""

import numpy as np
import pytest

from repro.errors import SignalProcessingError
from repro.radar import PathComponent, RadarConfig, UniformLinearArray, synthesize_frame
from repro.radar.frontend import apparent_distance
from repro.radar.processing import (
    background_subtract,
    compute_range_angle_map,
    frame_range_profiles,
)


@pytest.fixture()
def config():
    return RadarConfig(position=(0.0, 0.0), axis_angle=0.0,
                       facing_angle=np.pi / 2, noise_std=0.0)


@pytest.fixture()
def array(config):
    return UniformLinearArray(config)


def _peak_location(profile_map):
    index = np.unravel_index(np.argmax(profile_map.power), profile_map.power.shape)
    return (float(profile_map.ranges[index[0]]),
            float(profile_map.angles[index[1]]))


def _sense_one(components, config, array, max_range=20.0):
    frame = synthesize_frame(components, config, array, None)
    profiles = frame_range_profiles(frame, config)
    return compute_range_angle_map(profiles, config, array, 0.0,
                                   max_range=max_range)


class TestPathComponent:
    def test_rejects_negative_distance(self):
        with pytest.raises(SignalProcessingError):
            PathComponent(-1.0, 1.0, 0.1)

    def test_rejects_negative_amplitude(self):
        with pytest.raises(SignalProcessingError):
            PathComponent(1.0, 1.0, -0.1)

    def test_apparent_distance_with_offset(self, config):
        component = PathComponent(2.0, 1.0, 0.1, beat_offset_hz=50e3)
        expected = 2.0 + config.chirp.offset_for_switch_frequency(50e3)
        assert apparent_distance(component, config) == pytest.approx(expected)


class TestSynthesizeFrame:
    def test_shape(self, config, array):
        frame = synthesize_frame([PathComponent(3.0, 1.0, 0.1)], config, array)
        assert frame.shape == (7, config.chirp.num_samples)

    def test_empty_scene_without_noise_is_zero(self, config, array):
        frame = synthesize_frame([], config, array, None)
        assert np.all(frame == 0)

    def test_noise_added_with_rng(self, config, array, rng):
        noisy_config = RadarConfig(position=(0.0, 0.0), facing_angle=np.pi / 2,
                                   noise_std=1e-3)
        frame = synthesize_frame([], noisy_config, array, rng)
        rms = np.sqrt(np.mean(np.abs(frame) ** 2))
        assert rms == pytest.approx(1e-3, rel=0.05)

    def test_amplitude_superposition(self, config, array):
        c1 = PathComponent(3.0, 1.0, 0.1)
        c2 = PathComponent(5.0, 2.0, 0.05)
        both = synthesize_frame([c1, c2], config, array, None)
        separate = (synthesize_frame([c1], config, array, None)
                    + synthesize_frame([c2], config, array, None))
        assert both == pytest.approx(separate)

    def test_beyond_nyquist_tone_dropped(self, config, array):
        far = PathComponent(200.0, 1.0, 1.0)  # beat above fs/2
        frame = synthesize_frame([far], config, array, None)
        assert np.all(frame == 0)


class TestRangeAngleLocalization:
    def test_peak_at_true_polar_location(self, config, array):
        target = np.array([3.0, 4.0])
        distance, angle = array.polar_of(target)
        profile = _sense_one([PathComponent(distance, angle, 0.1)],
                             config, array)
        measured_range, measured_angle = _peak_location(profile)
        assert measured_range == pytest.approx(distance, abs=0.1)
        assert measured_angle == pytest.approx(angle, abs=0.05)

    def test_beat_offset_shifts_apparent_distance(self, config, array):
        """The heart of RF-Protect's Eq. 3 in the full pipeline."""
        physical = 1.3
        f_switch = float(config.chirp.switch_frequency_for_offset(3.0))
        component = PathComponent(physical, np.pi / 2, 0.1,
                                  beat_offset_hz=f_switch)
        profile = _sense_one([component], config, array)
        measured_range, _ = _peak_location(profile)
        assert measured_range == pytest.approx(physical + 3.0, abs=0.1)

    def test_min_range_blanks_near_field(self, config, array):
        near = PathComponent(0.3, np.pi / 2, 1.0)
        profile = _sense_one([near], config, array)
        assert profile.ranges[0] >= config.min_range
        # The strong near-field tone leaks only its windowed skirt.
        far_power = profile.power.max()
        direct = _sense_one([PathComponent(2.0, np.pi / 2, 1.0)],
                            config, array).power.max()
        assert far_power < direct / 10

    def test_max_range_crops(self, config, array):
        profile = _sense_one([PathComponent(3.0, 1.0, 0.1)], config, array,
                             max_range=8.0)
        assert profile.ranges[-1] <= 8.0


class TestBackgroundSubtraction:
    def test_first_frame_returns_zeros(self, config, array):
        frame = synthesize_frame([PathComponent(3.0, 1.0, 0.1)], config, array)
        profiles = frame_range_profiles(frame, config)
        assert np.all(background_subtract(profiles, None) == 0)

    def test_static_cancels_exactly(self, config, array):
        component = PathComponent(4.0, 1.2, 0.2)
        frame = synthesize_frame([component], config, array, None)
        profiles = frame_range_profiles(frame, config)
        subtracted = background_subtract(profiles, profiles)
        assert np.abs(subtracted).max() == pytest.approx(0.0, abs=1e-12)

    def test_mover_survives_subtraction(self, config, array):
        before = frame_range_profiles(
            synthesize_frame([PathComponent(4.0, 1.2, 0.2)], config, array,
                             None), config)
        after = frame_range_profiles(
            synthesize_frame([PathComponent(4.08, 1.2, 0.2)], config, array,
                             None), config)
        residual = background_subtract(after, before)
        assert np.abs(residual).max() > 0.01

    def test_shape_change_rejected(self, config, array):
        frame = synthesize_frame([], config, array, None)
        profiles = frame_range_profiles(frame, config)
        with pytest.raises(SignalProcessingError):
            background_subtract(profiles, profiles[:, :-10])

    def test_frame_shape_validated(self, config):
        with pytest.raises(SignalProcessingError):
            frame_range_profiles(np.zeros((3, 100)), config)


class TestProfileHelpers:
    def test_peak_position_roundtrip(self, config, array):
        target = np.array([2.0, 5.0])
        distance, angle = array.polar_of(target)
        profile = _sense_one([PathComponent(distance, angle, 0.1)],
                             config, array)
        peaks = profile.detect(threshold=profile.power.max() / 10, max_peaks=1)
        assert len(peaks) == 1
        position = profile.peak_position(peaks[0], array)
        assert position == pytest.approx(target, abs=0.15)

    def test_total_power_positive_with_target(self, config, array):
        profile = _sense_one([PathComponent(3.0, 1.0, 0.1)], config, array)
        assert profile.total_power() > 0
