"""Tests for the SensingResult API and FmcwRadar facade behavior."""

import numpy as np
import pytest

from repro.errors import TrackingError
from repro.geometry import Rectangle
from repro.radar import FmcwRadar, RadarConfig, Scene
from repro.radar.scene import BreathingSpec
from repro.types import Trajectory


@pytest.fixture(scope="module")
def breathing_session():
    config = RadarConfig(position=(5.0, 0.1), axis_angle=0.0,
                         facing_angle=np.pi / 2)
    radar = FmcwRadar(config)
    scene = Scene(Rectangle.from_size(10.0, 6.6))
    position = np.array([5.0, 4.0])
    scene.add_human(
        Trajectory(np.vstack([position, position]), dt=20.0),
        breathing=BreathingSpec(frequency=0.25, amplitude=0.005),
        rcs_fluctuation=0.0,
    )
    result = radar.sense(scene, 20.0, rng=np.random.default_rng(0))
    return radar, result, position


class TestSensingResult:
    def test_frame_count_and_times(self, breathing_session):
        radar, result, _position = breathing_session
        assert len(result.profiles) == 200  # 20 s at 10 Hz
        assert result.times.shape == (200,)
        assert np.diff(result.times) == pytest.approx(
            np.full(199, radar.config.frame_interval)
        )

    def test_raw_profiles_shape(self, breathing_session):
        radar, result, _position = breathing_session
        num_bins = result.range_bins().shape[0]
        assert result.raw_profiles.shape == (200, 7, num_bins)

    def test_frame_dt(self, breathing_session):
        radar, result, _position = breathing_session
        assert result.frame_dt == pytest.approx(0.1)

    def test_phase_series_carries_breathing(self, breathing_session):
        radar, result, position = breathing_session
        distance = radar.array.range_to(position)
        phase = np.unwrap(result.phase_series(distance))
        t = np.arange(phase.size) * result.frame_dt
        detrended = phase - np.polyval(np.polyfit(t, phase, 1), t)
        spectrum = np.abs(np.fft.rfft(detrended))
        freqs = np.fft.rfftfreq(phase.size, d=result.frame_dt)
        dominant = freqs[1:][int(np.argmax(spectrum[1:]))]
        assert dominant == pytest.approx(0.25, abs=0.03)

    def test_static_breather_leaves_no_tracks(self, breathing_session):
        # A breathing-but-stationary person produces only tiny frame-to-
        # frame residuals: no walking track should be extracted.
        _radar, result, _position = breathing_session
        for track in result.tracks():
            positions = np.vstack(track.raw_positions)
            spread = np.linalg.norm(positions - positions.mean(axis=0),
                                    axis=1).max()
            assert spread < 0.5

    def test_sense_rejects_nonpositive_duration(self):
        radar = FmcwRadar(RadarConfig(position=(5.0, 0.1),
                                      facing_angle=np.pi / 2))
        scene = Scene(Rectangle.from_size(10.0, 6.6))
        with pytest.raises(TrackingError):
            radar.sense(scene, -1.0)

    def test_default_rng_reproducible(self):
        radar = FmcwRadar(RadarConfig(position=(5.0, 0.1),
                                      facing_angle=np.pi / 2))
        scene = Scene(Rectangle.from_size(10.0, 6.6))
        scene.add_static((4.0, 3.0), rcs=2.0)
        first = radar.sense(scene, 1.0)
        second = radar.sense(scene, 1.0)
        assert first.raw_profiles == pytest.approx(second.raw_profiles)

    def test_max_range_override(self):
        radar = FmcwRadar(RadarConfig(position=(5.0, 0.1),
                                      facing_angle=np.pi / 2))
        scene = Scene(Rectangle.from_size(10.0, 6.6))
        result = radar.sense(scene, 1.0, max_range=4.0)
        assert result.profiles[0].ranges[-1] <= 4.0


class TestGeneratorStateDict:
    def test_class_gain_serialized(self, rng, tmp_path):
        from repro.gan import TrajectoryGenerator
        from repro.nn import load_state, save_state
        source = TrajectoryGenerator(noise_dim=4, hidden_size=6,
                                     num_steps=5, rng=rng)
        source.class_gain.data = np.array([0.1, 0.5, 1.0, 1.5, 2.0])
        path = tmp_path / "generator.npz"
        save_state(source, path)
        target = TrajectoryGenerator(noise_dim=4, hidden_size=6,
                                     num_steps=5,
                                     rng=np.random.default_rng(77))
        load_state(target, path)
        assert target.class_gain.data == pytest.approx(
            source.class_gain.data
        )

    def test_roundtrip_preserves_generation(self, rng, tmp_path):
        from repro.gan import TrajectoryGenerator
        from repro.nn import load_state, save_state
        source = TrajectoryGenerator(noise_dim=4, hidden_size=6,
                                     num_steps=5, dropout_probability=0.0,
                                     rng=rng)
        path = tmp_path / "generator.npz"
        save_state(source, path)
        clone = TrajectoryGenerator(noise_dim=4, hidden_size=6,
                                    num_steps=5, dropout_probability=0.0,
                                    rng=np.random.default_rng(5))
        load_state(clone, path)
        labels = np.array([0, 3])
        noise_rng = np.random.default_rng(9)
        a = source.generate_steps(2, labels, noise_rng)
        noise_rng = np.random.default_rng(9)
        b = clone.generate_steps(2, labels, noise_rng)
        assert a == pytest.approx(b)
