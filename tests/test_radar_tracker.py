"""Tests for repro.radar.tracker: Kalman filter, clustering, track extraction."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TrackingError
from repro.geometry import Rectangle
from repro.radar import (
    FmcwRadar,
    KalmanTracker2D,
    RadarConfig,
    Scene,
    TrackerConfig,
)
from repro.radar.tracker import Track, _cluster_detections
from repro.types import Trajectory


class TestKalmanTracker2D:
    def test_initial_state(self):
        kf = KalmanTracker2D(np.array([1.0, 2.0]))
        assert kf.position == pytest.approx([1.0, 2.0])
        assert kf.velocity == pytest.approx([0.0, 0.0])

    def test_predict_moves_with_velocity(self):
        kf = KalmanTracker2D(np.array([0.0, 0.0]))
        kf.state[2:] = [1.0, -2.0]
        predicted = kf.predict(0.5)
        assert predicted == pytest.approx([0.5, -1.0])

    def test_update_pulls_toward_measurement(self):
        kf = KalmanTracker2D(np.array([0.0, 0.0]))
        updated = kf.update(np.array([1.0, 0.0]))
        assert 0.0 < updated[0] <= 1.0

    def test_converges_to_constant_velocity_target(self):
        kf = KalmanTracker2D(np.array([0.0, 0.0]))
        dt = 0.1
        for step in range(1, 60):
            truth = np.array([0.5 * step * dt, 0.25 * step * dt])
            kf.predict(dt)
            kf.update(truth)
        assert kf.velocity == pytest.approx([0.5, 0.25], abs=0.05)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            KalmanTracker2D(np.zeros(3))
        kf = KalmanTracker2D(np.zeros(2))
        with pytest.raises(ConfigurationError):
            kf.predict(0.0)
        with pytest.raises(ConfigurationError):
            kf.update(np.zeros(3))

    def test_filtering_reduces_measurement_noise(self, rng):
        dt = 0.1
        kf = KalmanTracker2D(np.array([0.0, 0.0]),
                             measurement_noise=0.04)
        raw_errors, filtered_errors = [], []
        for step in range(1, 100):
            truth = np.array([1.0 * step * dt, 0.0])
            measurement = truth + rng.normal(0, 0.2, 2)
            kf.predict(dt)
            estimate = kf.update(measurement)
            if step > 20:  # after convergence
                raw_errors.append(np.linalg.norm(measurement - truth))
                filtered_errors.append(np.linalg.norm(estimate - truth))
        assert np.mean(filtered_errors) < np.mean(raw_errors)


class TestTrackerConfig:
    @pytest.mark.parametrize("kwargs", [
        {"threshold_factor": 0.0},
        {"gate_distance": -1.0},
        {"max_misses": -1},
        {"min_track_points": 1},
        {"max_targets": 0},
        {"min_hit_ratio": 0.0},
        {"min_relative_power_db": 0.0},
        {"cluster_radius": -0.1},
        {"association": "nearest"},
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            TrackerConfig(**kwargs)


class TestClusterDetections:
    def test_merges_nearby_into_weighted_centroid(self):
        detections = [(np.array([0.0, 0.0]), 3.0), (np.array([0.4, 0.0]), 1.0)]
        merged = _cluster_detections(detections, radius=1.0)
        assert len(merged) == 1
        position, power = merged[0]
        assert position == pytest.approx([0.1, 0.0])
        assert power == pytest.approx(4.0)

    def test_keeps_distant_detections(self):
        detections = [(np.array([0.0, 0.0]), 3.0), (np.array([5.0, 0.0]), 1.0)]
        merged = _cluster_detections(detections, radius=1.0)
        assert len(merged) == 2

    def test_radius_zero_disables(self):
        detections = [(np.array([0.0, 0.0]), 3.0), (np.array([0.1, 0.0]), 1.0)]
        assert len(_cluster_detections(detections, radius=0.0)) == 2

    def test_input_order_does_not_change_clusters(self):
        """Regression: clustering must be a function of the detection set.

        Historically the pre-sort was by power alone, so equal-power
        detections clustered in input order — permuting the input could
        change which detection anchored a cluster and therefore the
        merged centroids.
        """
        rng = np.random.default_rng(99)
        detections = [(rng.uniform(0.0, 4.0, 2), float(p))
                      for p in [3.0, 3.0, 3.0, 1.0, 1.0, 7.0]]
        baseline = _cluster_detections(detections, radius=1.5)
        for seed in range(8):
            shuffled = list(detections)
            np.random.default_rng(seed).shuffle(shuffled)
            merged = _cluster_detections(shuffled, radius=1.5)
            assert len(merged) == len(baseline)
            for (pos, power), (ref_pos, ref_power) in zip(merged, baseline):
                assert pos == pytest.approx(ref_pos)
                assert power == pytest.approx(ref_power)

    def test_output_is_canonically_ordered(self):
        detections = [(np.array([2.0, 0.0]), 1.0),
                      (np.array([0.0, 0.0]), 1.0),
                      (np.array([5.0, 1.0]), 4.0)]
        merged = _cluster_detections(detections, radius=0.5)
        powers = [power for _pos, power in merged]
        assert powers == sorted(powers, reverse=True)
        equal_power = [tuple(pos) for pos, power in merged if power == 1.0]
        assert equal_power == sorted(equal_power)


class TestTrackLifecycle:
    def test_to_trajectory_requires_points(self):
        track = Track(0.0, np.array([1.0, 1.0]), TrackerConfig())
        with pytest.raises(TrackingError):
            track.to_trajectory()

    def test_total_power_accumulates(self):
        track = Track(0.0, np.array([0.0, 0.0]), TrackerConfig(), power=2.0)
        track.add(0.1, np.array([0.1, 0.0]), power=3.0)
        assert track.total_power == pytest.approx(5.0)

    def test_alive_until_max_misses(self):
        config = TrackerConfig(max_misses=2)
        track = Track(0.0, np.array([0.0, 0.0]), config)
        track.mark_missed()
        track.mark_missed()
        assert track.alive
        track.mark_missed()
        assert not track.alive

    def test_to_trajectory_uniform_dt(self):
        config = TrackerConfig()
        track = Track(0.0, np.array([0.0, 0.0]), config)
        for step in range(1, 20):
            track.add(0.1 * step, np.array([0.05 * step, 0.0]))
        trajectory = track.to_trajectory(smooth=False)
        assert trajectory.dt == pytest.approx(0.1)
        assert len(trajectory) >= 19

    def test_age_counts_hits_and_misses(self):
        track = Track(0.0, np.array([0.0, 0.0]), TrackerConfig(),
                      track_id=7)
        assert track.track_id == 7
        assert track.age == 1
        track.add(0.1, np.array([0.1, 0.0]))
        track.mark_missed()
        track.mark_missed()
        track.add(0.4, np.array([0.2, 0.0]))
        assert track.age == 5
        assert track.misses == 0
        assert track.total_misses == 2

    def test_state_round_trip_is_exact(self):
        track = Track(0.0, np.array([1.0, 2.0]), TrackerConfig(),
                      power=3.0, track_id=11)
        track.add(0.1, np.array([1.1, 2.0]), power=2.5)
        track.mark_missed()
        restored = Track.from_state(track.to_state(), TrackerConfig())
        assert restored.track_id == track.track_id
        assert restored.times == track.times
        assert restored.age == track.age
        assert restored.misses == track.misses
        np.testing.assert_array_equal(restored.filter.state,
                                      track.filter.state)
        np.testing.assert_array_equal(restored.filter.covariance,
                                      track.filter.covariance)


class TestEndToEndTracking:
    """Full radar.sense -> extract_tracks on simple scenes."""

    def _run(self, scene_builder, duration=8.0, seed=4):
        config = RadarConfig(position=(5.0, 0.1), axis_angle=0.0,
                             facing_angle=np.pi / 2)
        radar = FmcwRadar(config)
        room = Rectangle.from_size(10.0, 6.6)
        scene = Scene(room)
        scene_builder(scene)
        return radar.sense(scene, duration, rng=np.random.default_rng(seed))

    def test_single_walker_tracked_accurately(self, straight_walk):
        result = self._run(lambda s: s.add_human(straight_walk))
        tracks = result.tracks()
        assert tracks, "walker was not tracked"
        best = tracks[0]
        errors = [
            np.linalg.norm(p - straight_walk.position_at(t))
            for t, p in zip(best.times, best.raw_positions)
        ]
        assert np.median(errors) < 0.15

    def test_empty_room_produces_no_tracks(self):
        result = self._run(lambda s: s.add_static((3.0, 3.0), rcs=5.0))
        assert result.tracks() == []

    def test_two_walkers_both_tracked(self):
        walk_a = Trajectory(np.linspace([2.0, 2.0], [2.0, 5.0], 50),
                            dt=8.0 / 49.0)
        walk_b = Trajectory(np.linspace([8.0, 5.0], [8.0, 2.0], 50),
                            dt=8.0 / 49.0)

        def build(scene):
            scene.add_human(walk_a)
            scene.add_human(walk_b)

        result = self._run(build)
        tracks = result.tracks()
        assert len(tracks) >= 2
        starts = [t.raw_positions[0] for t in tracks[:2]]
        xs = sorted(p[0] for p in starts)
        assert xs[0] == pytest.approx(2.0, abs=0.5)
        assert xs[1] == pytest.approx(8.0, abs=0.5)

    def test_best_trajectory_raises_when_empty(self):
        result = self._run(lambda s: None)
        with pytest.raises(TrackingError):
            result.best_trajectory()
