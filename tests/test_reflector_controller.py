"""Tests for repro.reflector.controller: trajectory -> switching schedule."""

import numpy as np
import pytest

from repro.errors import ReflectorError
from repro.reflector import ReflectorController, ReflectorPanel, SpoofCommand, SpoofSchedule
from repro.signal import ChirpConfig
from repro.types import Trajectory


@pytest.fixture()
def panel():
    return ReflectorPanel((5.0, 1.3), wall_angle=0.0, normal_angle=np.pi / 2)


@pytest.fixture()
def controller(panel):
    return ReflectorController(panel, ChirpConfig())


class TestSpoofSchedule:
    def _commands(self, times):
        return [SpoofCommand(t, 0, 30e3, 0.0, (5.0, 4.0)) for t in times]

    def test_command_at_selects_active_interval(self):
        schedule = SpoofSchedule(self._commands([0.0, 1.0, 2.0]),
                                 command_interval=1.0)
        assert schedule.command_at(0.5).time == 0.0
        assert schedule.command_at(1.0).time == 1.0
        assert schedule.command_at(2.9).time == 2.0

    def test_command_at_outside_returns_none(self):
        schedule = SpoofSchedule(self._commands([0.0, 1.0]),
                                 command_interval=1.0)
        assert schedule.command_at(-0.1) is None
        assert schedule.command_at(2.0) is None

    def test_rejects_duplicate_times(self):
        with pytest.raises(ReflectorError):
            SpoofSchedule(self._commands([0.0, 0.0]), command_interval=1.0)

    def test_rejects_empty(self):
        with pytest.raises(ReflectorError):
            SpoofSchedule([], command_interval=1.0)

    def test_intended_trajectory(self):
        commands = [SpoofCommand(t, 0, 30e3, 0.0, (t, 2 * t))
                    for t in (0.0, 1.0, 2.0)]
        schedule = SpoofSchedule(commands, command_interval=1.0)
        trajectory = schedule.intended_trajectory()
        assert trajectory.points == pytest.approx(
            np.array([[0.0, 0.0], [1.0, 2.0], [2.0, 4.0]])
        )


class TestCommandForPoint:
    def test_selects_nearest_antenna(self, controller, panel):
        # A ghost straight ahead of antenna 0's ray.
        angles = panel.antenna_angles()
        radar = controller.radar_position
        direction = np.array([np.cos(angles[0]), np.sin(angles[0])])
        ghost = radar + 5.0 * direction
        command = controller.command_for_point(ghost, 0.0)
        assert command.antenna_index == 0

    def test_switch_frequency_encodes_distance(self, controller, panel):
        ghost = panel.center + np.array([0.0, 4.0])
        command = controller.command_for_point(ghost, 0.0)
        chirp = controller.chirp
        offset = float(chirp.offset_for_switch_frequency(command.switch_frequency))
        antenna = panel.antenna_position(command.antenna_index)
        path = float(np.linalg.norm(antenna - controller.radar_position))
        ghost_range = float(np.linalg.norm(ghost - controller.radar_position))
        assert path + offset == pytest.approx(ghost_range, abs=1e-6)

    def test_too_close_ghost_rejected(self, controller, panel):
        ghost = panel.center + np.array([0.0, 0.1])
        with pytest.raises(ReflectorError):
            controller.command_for_point(ghost, 0.0)

    def test_frame_coherent_rounding(self, panel):
        controller = ReflectorController(panel, ChirpConfig(),
                                         frame_coherent_rate=10.0)
        ghost = panel.center + np.array([0.3, 4.0])
        command = controller.command_for_point(ghost, 0.0)
        assert command.switch_frequency % 10.0 == pytest.approx(0.0, abs=1e-6)


class TestPlanTrajectory:
    def test_command_count_matches_duration(self, controller):
        trajectory = Trajectory(
            np.linspace([4.5, 4.0], [5.5, 5.0], 20), dt=0.5
        )  # 9.5 s
        schedule = controller.plan_trajectory(trajectory)
        assert len(schedule) == int(round(9.5 * controller.command_rate)) + 1

    def test_intended_matches_input(self, controller):
        trajectory = Trajectory(
            np.linspace([4.5, 4.0], [5.5, 5.0], 21), dt=0.5
        )
        schedule = controller.plan_trajectory(trajectory)
        intended = schedule.intended_trajectory()
        for time, point in zip(intended.times, intended.points):
            assert point == pytest.approx(trajectory.position_at(time),
                                          abs=1e-9)

    def test_start_time_offsets_schedule(self, controller):
        trajectory = Trajectory(np.linspace([4.5, 4.0], [5.5, 5.0], 11),
                                dt=0.5)
        schedule = controller.plan_trajectory(trajectory, start_time=3.0)
        assert schedule.start_time == pytest.approx(3.0)
        assert schedule.command_at(2.9) is None
        assert schedule.command_at(3.1) is not None

    def test_plan_static_ghost_constant_frequency(self, controller):
        schedule = controller.plan_static_ghost(np.array([5.0, 5.0]), 10.0)
        frequencies = schedule.switch_frequencies()
        assert np.all(frequencies == frequencies[0])

    def test_plan_static_ghost_rejects_bad_duration(self, controller):
        with pytest.raises(ReflectorError):
            controller.plan_static_ghost(np.array([5.0, 5.0]), 0.0)


class TestPlaceTrajectory:
    def test_placed_shape_is_spoofable(self, controller):
        shape = Trajectory(np.linspace([-1.0, -1.0], [1.0, 1.0], 30), dt=0.3)
        placed = controller.place_trajectory(shape)
        # Every point must compile without a ReflectorError.
        controller.plan_trajectory(placed)

    def test_placement_preserves_shape(self, controller):
        shape = Trajectory(np.linspace([-1.0, 0.0], [1.0, 0.5], 30), dt=0.3)
        placed = controller.place_trajectory(shape)
        assert placed.step_lengths() == pytest.approx(
            shape.step_lengths(), abs=1e-9
        )

    def test_explicit_range_respected(self, controller):
        shape = Trajectory(np.linspace([-0.5, 0.0], [0.5, 0.0], 10), dt=1.0)
        placed = controller.place_trajectory(shape, center_range=6.0)
        distance = np.linalg.norm(placed.centroid() - controller.radar_position)
        assert distance == pytest.approx(6.0, abs=1e-6)

    def test_too_small_range_rejected(self, controller):
        shape = Trajectory(np.linspace([-2.0, 0.0], [2.0, 0.0], 10), dt=1.0)
        with pytest.raises(ReflectorError):
            controller.place_trajectory(shape, center_range=1.5)


class TestControllerValidation:
    def test_rejects_bad_command_rate(self, panel):
        with pytest.raises(ReflectorError):
            ReflectorController(panel, ChirpConfig(), command_rate=0.0)

    def test_rejects_bad_min_offset(self, panel):
        with pytest.raises(ReflectorError):
            ReflectorController(panel, ChirpConfig(), min_distance_offset=0.0)
