"""Tests for repro.reflector.hardware and repro.reflector.panel."""

import numpy as np
import pytest

from repro.errors import ReflectorError
from repro.reflector import (
    AntennaSwitchModel,
    LnaModel,
    PhaseShifterModel,
    ReflectorPanel,
    SwitchModel,
)


class TestSwitchModel:
    def test_harmonic_series_structure(self):
        switch = SwitchModel(insertion_loss_db=0.0, max_harmonic=5)
        lines = {h.order: h.amplitude for h in switch.harmonics()}
        # 50% duty: DC = 1/2, odd harmonics 1/(pi n), even vanish.
        assert lines[0] == pytest.approx(0.5)
        assert lines[1] == pytest.approx(1 / np.pi)
        assert lines[-1] == pytest.approx(1 / np.pi)
        assert lines[3] == pytest.approx(1 / (3 * np.pi))
        assert lines[5] == pytest.approx(1 / (5 * np.pi))
        assert 2 not in lines
        assert 4 not in lines

    def test_third_harmonic_9p5_db_down(self):
        switch = SwitchModel()
        lines = {h.order: h.amplitude for h in switch.harmonics()}
        ratio_db = 20 * np.log10(lines[3] / lines[1])
        assert ratio_db == pytest.approx(-9.54, abs=0.05)

    def test_single_sideband_removes_mirrors(self):
        switch = SwitchModel(include_negative=False)
        orders = [h.order for h in switch.harmonics()]
        assert all(order >= 0 for order in orders)

    def test_insertion_loss_scales_lines(self):
        lossless = {h.order: h.amplitude
                    for h in SwitchModel(insertion_loss_db=0.0).harmonics()}
        lossy = {h.order: h.amplitude
                 for h in SwitchModel(insertion_loss_db=6.0).harmonics()}
        assert lossy[1] / lossless[1] == pytest.approx(10 ** (-6 / 20))

    def test_asymmetric_duty_has_even_harmonics(self):
        switch = SwitchModel(duty_cycle=0.3)
        orders = {h.order for h in switch.harmonics()}
        assert 2 in orders

    def test_rejects_invalid(self):
        with pytest.raises(ReflectorError):
            SwitchModel(insertion_loss_db=-1.0)
        with pytest.raises(ReflectorError):
            SwitchModel(max_harmonic=0)
        with pytest.raises(ReflectorError):
            SwitchModel(duty_cycle=1.0)


class TestPhaseShifter:
    def test_quantization_step(self):
        shifter = PhaseShifterModel(bits=6)
        assert shifter.step == pytest.approx(2 * np.pi / 64)

    def test_quantize_rounds_to_step(self):
        shifter = PhaseShifterModel(bits=2)  # step pi/2
        assert shifter.quantize(0.9) == pytest.approx(np.pi / 2)
        assert shifter.quantize(0.1) == pytest.approx(0.0)

    def test_quantize_error_bounded(self, rng):
        shifter = PhaseShifterModel(bits=6)
        phases = rng.uniform(-np.pi, np.pi, 100)
        errors = np.abs(shifter.quantize(phases) - phases)
        assert errors.max() <= shifter.step / 2 + 1e-12

    def test_rejects_zero_bits(self):
        with pytest.raises(ReflectorError):
            PhaseShifterModel(bits=0)


class TestLnaAndAntennaSwitch:
    def test_lna_gain(self):
        assert LnaModel(gain_db=20.0).amplitude_gain == pytest.approx(10.0)

    def test_lna_rejects_negative(self):
        with pytest.raises(ReflectorError):
            LnaModel(gain_db=-3.0)

    def test_sp8t_port_check(self):
        switch = AntennaSwitchModel(num_ports=8)
        assert switch.check_port(7) == 7
        with pytest.raises(ReflectorError):
            switch.check_port(8)
        with pytest.raises(ReflectorError):
            switch.check_port(-1)


class TestReflectorPanel:
    def _panel(self, **kwargs):
        defaults = dict(num_antennas=6, spacing=0.2, wall_angle=0.0,
                        normal_angle=np.pi / 2)
        defaults.update(kwargs)
        return ReflectorPanel((5.0, 1.3), **defaults)

    def test_antenna_positions_span(self):
        panel = self._panel()
        positions = panel.antenna_positions()
        assert positions.shape == (6, 2)
        assert panel.span == pytest.approx(1.0)
        assert positions.mean(axis=0) == pytest.approx([5.0, 1.3])
        assert np.all(positions[:, 1] == pytest.approx(1.3))

    def test_antenna_position_bounds(self):
        panel = self._panel()
        with pytest.raises(ReflectorError):
            panel.antenna_position(6)

    def test_default_radar_position_behind_panel(self):
        panel = self._panel()
        radar = panel.default_radar_position(1.2)
        assert radar == pytest.approx([5.0, 0.1])

    def test_antenna_angles_spread(self):
        panel = self._panel()
        low, high = panel.angular_coverage()
        # 1.0 m span at 1.2 m standoff: roughly +-22.6 deg about broadside.
        assert np.degrees(high - low) == pytest.approx(45.2, abs=2.0)

    def test_nearest_antenna_monotone(self):
        panel = self._panel()
        angles = panel.antenna_angles()
        for index, angle in enumerate(angles):
            assert panel.nearest_antenna(angle) == index

    def test_rejects_degenerate_normal(self):
        with pytest.raises(ReflectorError):
            self._panel(normal_angle=0.0)

    def test_rejects_bad_sizes(self):
        with pytest.raises(ReflectorError):
            self._panel(num_antennas=0)
        with pytest.raises(ReflectorError):
            self._panel(spacing=0.0)
