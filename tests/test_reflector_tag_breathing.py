"""Tests for repro.reflector.tag and repro.reflector.breathing."""

import numpy as np
import pytest

from repro.errors import ReflectorError
from repro.radar import ChannelModel, RadarConfig, UniformLinearArray
from repro.reflector import (
    BreathingWaveform,
    ReflectorController,
    ReflectorPanel,
    RfProtectTag,
)
from repro.reflector.hardware import AntennaSwitchModel, SwitchModel
from repro.signal import ChirpConfig
from repro.types import Trajectory


@pytest.fixture()
def panel():
    return ReflectorPanel((5.0, 1.3), wall_angle=0.0, normal_angle=np.pi / 2)


@pytest.fixture()
def array():
    config = RadarConfig(position=(5.0, 0.1), axis_angle=0.0,
                         facing_angle=np.pi / 2)
    return UniformLinearArray(config)


@pytest.fixture()
def deployed_tag(panel):
    controller = ReflectorController(panel, ChirpConfig())
    trajectory = Trajectory(np.linspace([4.5, 4.0], [5.5, 5.0], 20), dt=0.5)
    tag = RfProtectTag(panel)
    tag.deploy(controller.plan_trajectory(trajectory))
    return tag


class TestBreathingWaveform:
    def test_peak_phase_formula(self):
        waveform = BreathingWaveform(chest_amplitude=0.005, wavelength=0.05)
        assert waveform.peak_phase == pytest.approx(4 * np.pi * 0.005 / 0.05)

    def test_deterministic_without_rng(self):
        waveform = BreathingWaveform()
        times = np.linspace(0, 20, 200)
        first = waveform.phase_waveform(times)
        second = waveform.phase_waveform(times)
        assert first == pytest.approx(second)

    def test_amplitude_bounded(self):
        waveform = BreathingWaveform(asymmetry=0.0, variability=0.0)
        times = np.linspace(0, 40, 400)
        phases = waveform.phase_waveform(times)
        assert np.abs(phases).max() <= waveform.peak_phase + 1e-9

    def test_period_matches_frequency(self):
        waveform = BreathingWaveform(frequency=0.25, asymmetry=0.0,
                                     variability=0.0)
        dt = 0.1
        times = np.arange(0, 40, dt)
        phases = waveform.phase_waveform(times)
        spectrum = np.abs(np.fft.rfft(phases - phases.mean()))
        freqs = np.fft.rfftfreq(times.size, d=dt)
        assert freqs[np.argmax(spectrum)] == pytest.approx(0.25, abs=0.02)

    def test_variability_wanders_with_rng(self, rng):
        waveform = BreathingWaveform(variability=0.1)
        times = np.linspace(0, 20, 200)
        wandered = waveform.phase_waveform(times, rng)
        clean = waveform.phase_waveform(times)
        assert not np.allclose(wandered, clean)

    def test_rejects_invalid(self):
        with pytest.raises(ReflectorError):
            BreathingWaveform(chest_amplitude=0.0)
        with pytest.raises(ReflectorError):
            BreathingWaveform(asymmetry=0.9)
        with pytest.raises(ReflectorError):
            BreathingWaveform(frequency=-1.0)


class TestTagConstruction:
    def test_effective_rcs_includes_chain(self, panel):
        tag = RfProtectTag(panel, base_rcs=0.01)
        # The LNA dominates the chain: effective RCS must exceed base.
        assert tag.effective_rcs > tag.base_rcs

    def test_panel_larger_than_switch_rejected(self):
        big_panel = ReflectorPanel((5.0, 1.3), num_antennas=9)
        with pytest.raises(ReflectorError):
            RfProtectTag(big_panel, antenna_switch=AntennaSwitchModel(num_ports=8))

    def test_rejects_bad_rcs(self, panel):
        with pytest.raises(ReflectorError):
            RfProtectTag(panel, base_rcs=0.0)


class TestTagPathComponents:
    def test_idle_tag_is_silent(self, panel, array, rng):
        tag = RfProtectTag(panel)
        assert tag.path_components(0.0, array, ChannelModel(), rng) == []

    def test_outside_schedule_is_silent(self, deployed_tag, array, rng):
        components = deployed_tag.path_components(100.0, array,
                                                  ChannelModel(), rng)
        assert components == []

    def test_emits_harmonic_lines(self, deployed_tag, array, rng):
        components = deployed_tag.path_components(1.0, array,
                                                  ChannelModel(), rng)
        offsets = sorted({c.beat_offset_hz for c in components})
        assert 0.0 in offsets                       # static DC line
        positive = [o for o in offsets if o > 0]
        negative = [o for o in offsets if o < 0]
        assert positive and negative
        # Harmonics are integer multiples of the fundamental.
        fundamental = min(positive)
        for offset in positive:
            assert offset / fundamental == pytest.approx(
                round(offset / fundamental)
            )

    def test_all_lines_from_physical_antenna(self, deployed_tag, array, rng):
        components = deployed_tag.path_components(1.0, array,
                                                  ChannelModel(), rng)
        distances = {round(c.distance, 6) for c in components}
        # Without multipath, every line shares the physical antenna path.
        assert len(distances) == 1

    def test_fundamental_stronger_than_harmonics(self, deployed_tag, array, rng):
        components = deployed_tag.path_components(1.0, array,
                                                  ChannelModel(), rng)
        by_offset = {c.beat_offset_hz: c.amplitude for c in components}
        fundamental = min(o for o in by_offset if o > 0)
        third = 3 * fundamental
        assert by_offset[third] == pytest.approx(by_offset[fundamental] / 3,
                                                 rel=1e-6)

    def test_multipath_dresses_main_lines(self, deployed_tag, array, rng):
        from repro.radar.channel import MultipathSpec
        channel = ChannelModel(multipath=MultipathSpec(mean_paths=3.0))
        components = deployed_tag.path_components(1.0, array, channel, rng)
        no_multipath = deployed_tag.path_components(1.0, array,
                                                    ChannelModel(), rng)
        assert len(components) > len(no_multipath)

    def test_clear_stops_all_ghosts(self, deployed_tag, array, rng):
        deployed_tag.clear()
        assert deployed_tag.path_components(1.0, array, ChannelModel(), rng) == []


class TestGhostReports:
    def test_one_report_per_schedule(self, panel):
        controller = ReflectorController(panel, ChirpConfig())
        tag = RfProtectTag(panel)
        for _ in range(3):
            trajectory = Trajectory(
                np.linspace([4.5, 4.0], [5.5, 5.0], 10), dt=0.5
            )
            tag.deploy(controller.plan_trajectory(trajectory))
        reports = tag.ghost_reports()
        assert len(reports) == 3
        assert [r.ghost_id for r in reports] == [0, 1, 2]

    def test_report_carries_intended_trajectory(self, panel):
        controller = ReflectorController(panel, ChirpConfig())
        trajectory = Trajectory(np.linspace([4.5, 4.0], [5.5, 5.0], 10),
                                dt=0.5)
        tag = RfProtectTag(panel)
        schedule = controller.plan_trajectory(trajectory)
        tag.deploy(schedule)
        report = tag.ghost_reports()[0]
        assert report.trajectory.points == pytest.approx(
            schedule.intended_trajectory().points
        )


class TestSingleSidebandAblation:
    def test_ssb_switch_removes_mirror_lines(self, panel, array, rng):
        controller = ReflectorController(panel, ChirpConfig())
        trajectory = Trajectory(np.linspace([4.5, 4.0], [5.5, 5.0], 10),
                                dt=0.5)
        tag = RfProtectTag(panel, switch=SwitchModel(include_negative=False))
        tag.deploy(controller.plan_trajectory(trajectory))
        components = tag.path_components(1.0, array, ChannelModel(), rng)
        assert all(c.beat_offset_hz >= 0 for c in components)
