"""Regression tests for experiment-runner option handling.

Pins two previously untested behaviors of `repro.experiments.runner`:
explicit keyword options must override the ``fast_options`` presets, and
unknown ids must raise an error that lists every known id.
"""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.runner import (
    EXPERIMENTS,
    ExperimentSpec,
    run_experiment,
    run_experiments,
)


@pytest.fixture()
def spy_experiment(monkeypatch):
    """A registered fake experiment that records the kwargs it receives."""
    calls: list[dict] = []

    def spy_run(**kwargs):
        calls.append(kwargs)
        return kwargs

    spec = ExperimentSpec(
        "spy", "records received kwargs", spy_run,
        fast_options={"duration": 1.0, "quality": "tiny"},
    )
    monkeypatch.setitem(EXPERIMENTS, "spy", spec)
    return calls


class TestOptionPrecedence:
    def test_fast_presets_applied(self, spy_experiment):
        run_experiment("spy", fast=True)
        assert spy_experiment[-1] == {"duration": 1.0, "quality": "tiny"}

    def test_explicit_kwargs_override_fast_presets(self, spy_experiment):
        run_experiment("spy", fast=True, duration=9.0)
        assert spy_experiment[-1] == {"duration": 9.0, "quality": "tiny"}

    def test_fast_false_ignores_presets(self, spy_experiment):
        run_experiment("spy", fast=False, duration=2.5)
        assert spy_experiment[-1] == {"duration": 2.5}

    def test_run_experiments_inherits_precedence(self, spy_experiment):
        run_experiments(["spy"], fast=True, workers=1, duration=4.0)
        assert spy_experiment[-1] == {"duration": 4.0, "quality": "tiny"}

    def test_explicit_seed_beats_spawned_seed(self, spy_experiment):
        run_experiments(["spy"], fast=False, workers=1, base_seed=11, seed=5)
        assert spy_experiment[-1] == {"seed": 5}

    def test_broadcast_seed_dropped_for_seedless_experiments(self, monkeypatch):
        """``run all --seed N`` must not crash deterministic experiments."""
        calls: list[dict] = []

        def seedless_run(*, duration: float = 1.0) -> dict:
            calls.append({"duration": duration})
            return calls[-1]

        spec = ExperimentSpec("seedless", "takes no seed", seedless_run,
                              fast_options={})
        monkeypatch.setitem(EXPERIMENTS, "seedless", spec)
        run_experiment("seedless", fast=True, seed=3, duration=2.0)
        assert calls[-1] == {"duration": 2.0}
        run_experiments(["seedless"], fast=True, workers=1, base_seed=11)
        assert calls[-1] == {"duration": 1.0}


class TestUnknownIdErrors:
    def test_unknown_id_lists_all_known_ids(self):
        with pytest.raises(ExperimentError) as excinfo:
            run_experiment("fig99")
        message = str(excinfo.value)
        assert "fig99" in message
        for known_id in EXPERIMENTS:
            assert known_id in message

    def test_run_experiments_validates_before_running(self, spy_experiment):
        with pytest.raises(ExperimentError) as excinfo:
            run_experiments(["spy", "not-a-real-id"], workers=1)
        message = str(excinfo.value)
        assert "not-a-real-id" in message
        for known_id in EXPERIMENTS:
            assert known_id in message
        # Validation happens up front: nothing ran.
        assert spy_experiment == []

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ExperimentError, match="workers"):
            run_experiments(["fig9"], workers=0)
