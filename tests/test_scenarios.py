"""Tests for the declarative scenario registry (``repro.scenarios``).

The registry is the single source of truth for scene construction, so
these tests pin its whole contract: spec validation, registry dispatch
errors, bitwise equivalence of the office/home shims with the registry
path, seed determinism of built content (including stability under
adding humans — the worker-independence guarantee), reflector-strategy
dispatch, inter-person occlusion, traffic-mix planning, and the
``--scenario`` plumbing through the experiments runner, CLI, and serve
demo.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.errors import ScenarioError
from repro.experiments import runner
from repro.experiments.environments import (
    home_environment,
    office_environment,
)
from repro.experiments.runner import run_experiment
from repro.radar import OcclusionSpec, Scene
from repro.radar.antenna import UniformLinearArray
from repro.reflector import RfProtectTag
from repro.scenarios import (
    REFLECTOR_STRATEGIES,
    SCENARIOS,
    FloorplanSpec,
    HumanSpec,
    RadarPlacement,
    ReflectorSpec,
    ScenarioSpec,
    TrafficMix,
    build,
    get_scenario,
    register_scenario,
    scenario_names,
    traffic_weights,
)
from repro.serve.app import build_demo_scene
from repro.trajectories import ActivityProgram

OFFICE_LIKE = FloorplanSpec(size=(8.0, 6.0))


def make_spec(name: str = "test-spec", **overrides) -> ScenarioSpec:
    defaults = dict(
        name=name,
        description="a throwaway spec",
        floorplan=OFFICE_LIKE,
        multipath=get_scenario("office").multipath,
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class TestRegistry:
    def test_office_and_home_are_registered(self):
        names = scenario_names()
        assert "office" in names and "home" in names

    def test_at_least_six_additional_scenarios(self):
        extra = set(scenario_names()) - {"office", "home"}
        assert len(extra) >= 6, sorted(extra)

    def test_names_are_sorted_and_match_mapping(self):
        assert list(scenario_names()) == sorted(SCENARIOS)

    def test_unknown_scenario_lists_known_names(self):
        with pytest.raises(ScenarioError, match="office"):
            get_scenario("no-such-place")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ScenarioError, match="duplicate"):
            register_scenario(make_spec("office"))

    def test_every_scenario_description_nonempty(self):
        for name in scenario_names():
            assert get_scenario(name).description

    def test_traffic_weights_are_positive(self):
        weights = traffic_weights()
        assert weights
        assert all(weight > 0 for weight in weights.values())


class TestSpecValidation:
    def test_bad_wall_rejected(self):
        with pytest.raises(ScenarioError, match="wall"):
            RadarPlacement(wall="ceiling")

    def test_bad_fraction_rejected(self):
        with pytest.raises(ScenarioError, match="fraction"):
            RadarPlacement(fraction=1.5)

    def test_clutter_outside_footprint_rejected(self):
        with pytest.raises(ScenarioError, match="outside"):
            FloorplanSpec(size=(4.0, 4.0), clutter=((5.0, 1.0, 1.0),))

    def test_margin_swallowing_room_rejected(self):
        with pytest.raises(ScenarioError, match="margin"):
            FloorplanSpec(size=(1.0, 1.0), margin=0.5)

    def test_unknown_reflector_kind_rejected(self):
        with pytest.raises(ScenarioError, match="reflector kind"):
            ReflectorSpec(kind="mirror-ball")

    def test_nonpositive_rcs_rejected(self):
        with pytest.raises(ScenarioError, match="rcs"):
            HumanSpec(program=ActivityProgram.of("walk"), rcs=0.0)

    def test_scenario_needs_a_radar(self):
        with pytest.raises(ScenarioError, match="radar"):
            make_spec(radars=())


class TestEnvironmentShim:
    @pytest.mark.parametrize("name,shim", [
        ("office", office_environment), ("home", home_environment),
    ])
    def test_shim_resolves_through_registry(self, name, shim):
        via_shim = shim()
        via_registry = build(name).environment
        assert via_shim.name == via_registry.name == name
        assert via_shim.radar_config == via_registry.radar_config
        assert ((via_shim.room.x_min, via_shim.room.y_min,
                 via_shim.room.x_max, via_shim.room.y_max)
                == (via_registry.room.x_min, via_registry.room.y_min,
                    via_registry.room.x_max, via_registry.room.y_max))
        assert via_shim.multipath == via_registry.multipath
        assert via_shim.static_clutter == via_registry.static_clutter
        np.testing.assert_array_equal(via_shim.panel.center,
                                      via_registry.panel.center)


class TestBuildDeterminism:
    def test_same_seed_builds_identical_trajectories(self):
        first = build("office-crowd", seed=11).human_trajectories()
        second = build("office-crowd", seed=11).human_trajectories()
        assert len(first) == len(second) == 3
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a.points, b.points)

    def test_different_seeds_differ(self):
        a = build("office-crowd", seed=1).human_trajectories()[0]
        b = build("office-crowd", seed=2).human_trajectories()[0]
        assert not np.array_equal(a.points, b.points)

    def test_default_seed_comes_from_spec(self):
        built = build("office")
        assert built.seed == get_scenario("office").default_seed

    def test_adding_humans_keeps_existing_streams(self):
        """Per-human streams spawn by index: human *i* is unaffected by
        how many humans follow — the worker-independence guarantee."""
        base = make_spec(humans=(
            HumanSpec(program=ActivityProgram.of("walk")),
            HumanSpec(program=ActivityProgram.of("sit")),
        ))
        extended = dataclasses.replace(base, humans=base.humans + (
            HumanSpec(program=ActivityProgram.of("stride")),
        ))
        short = build(base, seed=5).human_trajectories()
        long = build(extended, seed=5).human_trajectories()
        for a, b in zip(short, long):
            np.testing.assert_array_equal(a.points, b.points)

    def test_trajectories_stay_in_walkable_area(self):
        built = build("warehouse-sweep", seed=3)
        room = built.environment.room
        margin = built.spec.floorplan.margin
        for trajectory in built.human_trajectories():
            assert room.contains_all(trajectory.points,
                                     margin=margin - 1e-9)


class TestMultiRadar:
    def test_dual_radar_scenario_builds_two_radars(self):
        built = build("office-dual-radar")
        radars = built.make_radars()
        assert len(radars) == 2
        assert radars[0].config == built.environment.radar_config
        # Secondary radar shares the primary's chirp and noise floor.
        assert radars[1].config.chirp == radars[0].config.chirp
        assert radars[1].config.noise_std == radars[0].config.noise_std
        assert not np.allclose(radars[1].config.position,
                               radars[0].config.position)


class TestReflectorStrategies:
    def test_all_declared_kinds_are_registered(self):
        from repro.scenarios.spec import REFLECTOR_KINDS

        assert sorted(REFLECTOR_STRATEGIES) == sorted(REFLECTOR_KINDS)

    @pytest.mark.parametrize("kind", ["static-ghost", "walking-ghost",
                                      "breathing-ghost"])
    def test_ghost_strategies_deploy_a_tag(self, kind):
        spec = make_spec(reflector=ReflectorSpec(kind=kind),
                         duration_s=2.0, num_points=10)
        scene = build(spec, seed=0).build_scene()
        tags = [e for e in scene.entities if isinstance(e, RfProtectTag)]
        assert len(tags) == 1

    def test_none_strategy_deploys_nothing(self):
        scene = build(make_spec(), seed=0).build_scene()
        assert not any(isinstance(e, RfProtectTag) for e in scene.entities)

    def test_duplicate_strategy_registration_rejected(self):
        from repro.scenarios import register_reflector_strategy

        with pytest.raises(ScenarioError, match="duplicate"):
            register_reflector_strategy("none")(lambda *args: None)


class TestOcclusion:
    def _blocked_scene(self, occlusion: OcclusionSpec | None) -> Scene:
        spec = make_spec(
            humans=(
                # Far subject dead ahead of the radar, with the second
                # human standing exactly on the line of sight.
                HumanSpec(program=ActivityProgram.of("sit"),
                          start=(4.0, 5.0)),
                HumanSpec(program=ActivityProgram.of("sit"),
                          start=(4.0, 2.0)),
            ),
            occlusion=occlusion,
        )
        return build(spec, seed=0).build_scene(include_clutter=False)

    def test_blocked_human_is_attenuated(self):
        config = build(make_spec()).environment.radar_config
        array = UniformLinearArray(config)
        spec = OcclusionSpec(attenuation_db=6.0)
        clear = self._blocked_scene(None)
        shadowed = self._blocked_scene(spec)
        far_clear, far_shadowed = clear.entities[0], shadowed.entities[0]
        rng_a, rng_b = (np.random.default_rng(0) for _ in range(2))
        amp_clear = clear.entity_components(far_clear, 0.0, array,
                                            rng_a)[0].amplitude
        amp_shadowed = shadowed.entity_components(far_shadowed, 0.0, array,
                                                  rng_b)[0].amplitude
        np.testing.assert_allclose(
            amp_shadowed, amp_clear * spec.attenuation_linear)

    def test_unblocked_human_is_untouched(self):
        config = build(make_spec()).environment.radar_config
        array = UniformLinearArray(config)
        clear = self._blocked_scene(None)
        shadowed = self._blocked_scene(OcclusionSpec())
        near_clear, near_shadowed = clear.entities[1], shadowed.entities[1]
        rng_a, rng_b = (np.random.default_rng(0) for _ in range(2))
        amp_clear = clear.entity_components(near_clear, 0.0, array,
                                            rng_a)[0].amplitude
        amp_shadowed = shadowed.entity_components(near_shadowed, 0.0,
                                                  array, rng_b)[0].amplitude
        np.testing.assert_allclose(amp_shadowed, amp_clear)

    def test_occlusion_spec_validation(self):
        from repro.errors import SceneError

        with pytest.raises(SceneError):
            OcclusionSpec(body_radius=0.0)
        with pytest.raises(SceneError):
            OcclusionSpec(attenuation_db=-1.0)


class TestTrafficMix:
    def test_default_mix_covers_weighted_registry(self):
        mix = TrafficMix()
        assert mix.scenarios == tuple(sorted(traffic_weights()))

    def test_plan_is_deterministic(self):
        mix = TrafficMix()
        first = mix.plan(16, base_seed=42)
        second = mix.plan(16, base_seed=42)
        assert first == second

    def test_plan_prefix_stable_in_request_count(self):
        mix = TrafficMix()
        assert mix.plan(16, base_seed=7)[:8] == mix.plan(8, base_seed=7)

    def test_unknown_scenario_in_weights_rejected(self):
        with pytest.raises(ScenarioError, match="unknown scenario"):
            TrafficMix({"nowhere": 1.0})

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ScenarioError, match="positive"):
            TrafficMix({"office": 0.0})

    def test_weighting_shifts_the_draw(self):
        plan = TrafficMix({"office": 1000.0, "home": 1e-9}).plan(
            32, base_seed=0)
        drawn = {planned.scenario for planned in plan}
        assert drawn == {"office"}


class TestRunnerScenarioOption:
    def _spy_spec(self, run) -> runner.ExperimentSpec:
        return runner.ExperimentSpec("spy", "spy experiment", run, {})

    def test_scenario_resolves_to_environment(self, monkeypatch):
        seen = {}

        def spy_run(*, environment=None, seed=0):
            seen["environment"] = environment
            return "done"

        monkeypatch.setitem(runner.EXPERIMENTS, "spy",
                            self._spy_spec(spy_run))
        assert run_experiment("spy", scenario="home") == "done"
        assert seen["environment"].name == "home"

    def test_explicit_environment_wins_over_scenario(self, monkeypatch):
        seen = {}

        def spy_run(*, environment=None):
            seen["environment"] = environment
            return None

        monkeypatch.setitem(runner.EXPERIMENTS, "spy",
                            self._spy_spec(spy_run))
        office = build("office").environment
        run_experiment("spy", scenario="home", environment=office)
        assert seen["environment"] is office

    def test_scenario_ignored_without_environment_param(self, monkeypatch):
        def spy_run(*, seed=0):
            return "ran"

        monkeypatch.setitem(runner.EXPERIMENTS, "spy",
                            self._spy_spec(spy_run))
        assert run_experiment("spy", scenario="home") == "ran"

    def test_unknown_scenario_raises_even_when_ignored(self, monkeypatch):
        def spy_run(*, seed=0):
            return "ran"

        monkeypatch.setitem(runner.EXPERIMENTS, "spy",
                            self._spy_spec(spy_run))
        with pytest.raises(ScenarioError, match="unknown scenario"):
            run_experiment("spy", scenario="atlantis")


class TestCliSurface:
    def test_scenarios_listing(self, capsys):
        assert cli_main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_run_rejects_unknown_scenario(self, capsys):
        code = cli_main(["run", "fig9", "--fast", "--scenario", "atlantis"])
        assert code == 1
        assert "unknown scenario" in capsys.readouterr().err

    def test_env_knob_feeds_default_scenario(self, monkeypatch, capsys):
        monkeypatch.setenv("RF_PROTECT_SCENARIO", "atlantis")
        code = cli_main(["run", "fig9", "--fast"])
        assert code == 1
        assert "unknown scenario" in capsys.readouterr().err


class TestServeDemoScenes:
    def test_environment_only_scenario_gets_demo_ghost(self):
        scene, config = build_demo_scene(scenario="office")
        assert any(isinstance(e, RfProtectTag) for e in scene.entities)
        assert config.position == build(
            "office").environment.radar_config.position

    def test_content_bearing_scenario_uses_builder(self):
        scene, _config = build_demo_scene(scenario="office-crowd")
        assert len(scene.humans()) == 3
        assert scene.occlusion is not None

    def test_demo_scene_radar_config_uses_fast_chirp(self):
        from repro.serve.app import DEMO_CHIRP_DURATION_S

        _scene, config = build_demo_scene(scenario="home-breathing")
        assert config.chirp.duration == DEMO_CHIRP_DURATION_S
