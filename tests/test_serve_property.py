"""Property tests for the micro-batching scheduler core (``MicroBatcher``).

The batcher is deliberately pure (explicit timestamps, no clock, no
asyncio), so hypothesis can drive it through arbitrary arrival patterns and
prove the conservation laws the service relies on:

- nothing is lost and nothing is duplicated: every admitted item appears in
  exactly one flushed batch (unless explicitly removed, in which case it
  appears in none);
- no batch ever exceeds ``max_batch_size``, and every batch is
  key-homogeneous;
- a ``"size"``-flushed batch is exactly full; a ``"window"``-flushed batch
  was held at least ``window_s`` (for positive windows);
- the same event sequence always produces the identical batch sequence
  (the scheduler itself is deterministic).
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.batcher import Batch, MicroBatcher

KEYS = ("alpha", "beta", "gamma")


@dataclasses.dataclass(frozen=True)
class Arrival:
    key: str
    gap_s: float  # time since the previous event
    poll_before: bool  # run a due() poll before this add


arrivals = st.lists(
    st.builds(
        Arrival,
        key=st.sampled_from(KEYS),
        gap_s=st.floats(min_value=0.0, max_value=0.5, allow_nan=False,
                        allow_infinity=False),
        poll_before=st.booleans(),
    ),
    max_size=60,
)

batcher_params = st.tuples(
    st.integers(min_value=1, max_value=5),          # max_batch_size
    st.sampled_from([0.0, 0.01, 0.1, 1.0]),         # window_s
)


def run_schedule(max_batch_size: int, window_s: float,
                 events: list[Arrival]) -> list[Batch[str, int]]:
    """Feed the arrival schedule through a fresh batcher; drain at the end."""
    batcher: MicroBatcher[str, int] = MicroBatcher(
        max_batch_size=max_batch_size, window_s=window_s
    )
    flushed: list[Batch[str, int]] = []
    now = 0.0
    for item_id, event in enumerate(events):
        now += event.gap_s
        if event.poll_before:
            flushed.extend(batcher.due(now))
        full = batcher.add(event.key, item_id, now)
        if full is not None:
            flushed.append(full)
    flushed.extend(batcher.drain(now + 1.0))
    assert batcher.pending_count() == 0
    return flushed


@given(params=batcher_params, events=arrivals)
@settings(max_examples=200, deadline=None)
def test_no_item_lost_or_duplicated(params, events):
    max_batch_size, window_s = params
    flushed = run_schedule(max_batch_size, window_s, events)
    delivered = [item for batch in flushed for item in batch.items]
    assert sorted(delivered) == list(range(len(events)))


@given(params=batcher_params, events=arrivals)
@settings(max_examples=200, deadline=None)
def test_batch_invariants(params, events):
    max_batch_size, window_s = params
    flushed = run_schedule(max_batch_size, window_s, events)
    for batch in flushed:
        assert 1 <= len(batch) <= max_batch_size
        assert {events[item].key for item in batch.items} == {batch.key}
        assert batch.reason in ("size", "window", "drain")
        assert batch.flushed_at >= batch.opened_at
        if batch.reason == "size":
            assert len(batch) == max_batch_size
        if batch.reason == "window" and window_s > 0:
            # A window flush only happens once the first arrival has
            # genuinely waited out the latency budget.
            assert batch.flushed_at - batch.opened_at >= window_s


@given(params=batcher_params, events=arrivals)
@settings(max_examples=100, deadline=None)
def test_schedule_is_deterministic(params, events):
    max_batch_size, window_s = params
    first = run_schedule(max_batch_size, window_s, events)
    second = run_schedule(max_batch_size, window_s, events)
    assert first == second


@given(
    params=batcher_params,
    events=arrivals,
    removal_mask=st.lists(st.booleans(), max_size=60),
)
@settings(max_examples=100, deadline=None)
def test_removed_items_are_never_flushed(params, events, removal_mask):
    max_batch_size, window_s = params
    batcher: MicroBatcher[str, int] = MicroBatcher(
        max_batch_size=max_batch_size, window_s=window_s
    )
    flushed: list[Batch[str, int]] = []
    removed: set[int] = set()
    now = 0.0
    for item_id, event in enumerate(events):
        now += event.gap_s
        full = batcher.add(event.key, item_id, now)
        if full is not None:
            flushed.append(full)
        elif item_id < len(removal_mask) and removal_mask[item_id]:
            # Still held: cancel it (the service's deadline-expiry path).
            assert batcher.remove(event.key, item_id)
            removed.add(item_id)
    flushed.extend(batcher.drain(now + 1.0))
    delivered = [item for batch in flushed for item in batch.items]
    assert sorted(delivered) == sorted(set(range(len(events))) - removed)
    assert not removed & set(delivered)
    for batch in flushed:
        assert len(batch) >= 1


def test_remove_unknown_item_is_a_noop():
    batcher: MicroBatcher[str, int] = MicroBatcher(max_batch_size=4,
                                                   window_s=1.0)
    assert not batcher.remove("alpha", 0)
    batcher.add("alpha", 1, 0.0)
    assert not batcher.remove("alpha", 2)
    assert not batcher.remove("beta", 1)
    assert batcher.pending_count() == 1


def test_next_due_at_tracks_earliest_open_batch():
    batcher: MicroBatcher[str, int] = MicroBatcher(max_batch_size=4,
                                                   window_s=0.5)
    assert batcher.next_due_at() is None
    batcher.add("alpha", 0, 1.0)
    batcher.add("beta", 1, 1.2)
    assert batcher.next_due_at() == 1.5
    assert [b.key for b in batcher.due(1.5)] == ["alpha"]
    assert batcher.next_due_at() == 1.7
