"""Tests for the micro-batching sensing service (``repro.serve``).

Pins the subsystem's four contracts:

- **equivalence/determinism** — served results are bitwise identical to
  direct ``FmcwRadar.sense`` calls with the same parameters, for any
  submission order and any batch grouping (and inside 1e-10 of the naive
  reference, transitively via the pinned pipeline equivalence);
- **saturation** — a full admission queue rejects with
  ``ServiceOverloadedError``; expired deadlines cancel queued work with
  ``DeadlineExceededError`` before compute is spent;
- **degradation** — a vectorized-path failure falls back to the naive
  kernels per request, visibly (response backend + fallback counter);
- **telemetry** — the metrics snapshot reports counts, batch sizes, and
  latency percentiles as JSON.
"""

from __future__ import annotations

import asyncio
import json
import threading

import numpy as np
import pytest

import repro.serve.engine as serve_engine
from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.geometry import Rectangle
from repro.radar import FmcwRadar, RadarConfig, Scene
from repro.serve import (
    BACKEND_NAIVE_FALLBACK,
    BACKEND_VECTORIZED,
    InProcessClient,
    SenseRequest,
    SenseService,
    ServiceConfig,
)
from repro.signal.chirp import ChirpConfig

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def fast_radar_config(**overrides) -> RadarConfig:
    """A 64-sample chirp keeps every service test sub-second."""
    defaults = dict(
        chirp=ChirpConfig(duration=3.2e-5),
        position=(2.0, 0.1),
        facing_angle=np.pi / 2.0,
    )
    defaults.update(overrides)
    return RadarConfig(**defaults)


@pytest.fixture(scope="module")
def scene() -> Scene:
    room = Rectangle.from_size(4.0, 4.0)
    built = Scene(room)
    built.add_static((1.0, 3.0), rcs=4.0)
    built.add_static((3.2, 2.1), rcs=2.0)
    return built


@pytest.fixture(scope="module")
def radar_config() -> RadarConfig:
    return fast_radar_config()


def quick_service_config(**overrides) -> ServiceConfig:
    defaults = dict(max_batch_size=4, batch_window_ms=5.0, queue_depth=64,
                    default_deadline_s=10.0, workers=2)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


class TestRequestValidation:
    def test_bad_duration_rejected(self, scene):
        with pytest.raises(ConfigurationError, match="duration"):
            SenseRequest(scene=scene, duration=0.0)

    def test_bad_max_range_rejected(self, scene):
        with pytest.raises(ConfigurationError, match="max_range"):
            SenseRequest(scene=scene, duration=1.0, max_range=-1.0)

    def test_bad_deadline_rejected(self, scene):
        with pytest.raises(ConfigurationError, match="deadline"):
            SenseRequest(scene=scene, duration=1.0, deadline_s=0.0)


class TestEquivalenceAndDeterminism:
    def test_served_results_bitwise_match_direct_sense(self, scene,
                                                       radar_config):
        seeds = [3, 1, 4, 1, 5, 9]  # includes a duplicate seed
        radar = FmcwRadar(radar_config)
        direct = [radar.sense(scene, 0.3, rng=np.random.default_rng(s))
                  for s in seeds]

        requests = [SenseRequest(scene=scene, duration=0.3, seed=s)
                    for s in seeds]
        with InProcessClient(quick_service_config(),
                             default_radar_config=radar_config) as client:
            served = client.sense_many(requests)

        assert [r.backend for r in served] == [BACKEND_VECTORIZED] * len(seeds)
        for expected, response in zip(direct, served):
            result = response.result
            assert np.array_equal(result.times, expected.times)
            assert np.array_equal(result.raw_profiles, expected.raw_profiles)
            assert len(result.profiles) == len(expected.profiles)
            for got, want in zip(result.profiles, expected.profiles):
                assert np.array_equal(got.power, want.power)
                assert np.array_equal(got.ranges, want.ranges)
                assert np.array_equal(got.angles, want.angles)

    def test_equivalence_to_naive_reference_within_1e10(self, scene,
                                                        radar_config):
        radar = FmcwRadar(radar_config)
        naive = radar.sense(scene, 0.3, rng=np.random.default_rng(11),
                            synth="naive", pipeline="naive")
        with InProcessClient(quick_service_config(),
                             default_radar_config=radar_config) as client:
            served = client.sense(
                SenseRequest(scene=scene, duration=0.3, seed=11)
            )
        for got, want in zip(served.result.profiles, naive.profiles):
            np.testing.assert_allclose(got.power, want.power, atol=1e-10)

    def test_arrival_order_and_grouping_do_not_change_results(self, scene,
                                                              radar_config):
        seeds = list(range(8))
        requests = {
            s: SenseRequest(scene=scene, duration=0.3, seed=s) for s in seeds
        }
        # Run 1: submission order 0..7, large batches.
        with InProcessClient(quick_service_config(max_batch_size=8),
                             default_radar_config=radar_config) as client:
            responses = client.sense_many([requests[s] for s in seeds])
            first = dict(zip(seeds, responses))
        # Run 2: reversed order, singleton batches (window 0, size 1).
        with InProcessClient(
            quick_service_config(max_batch_size=1, batch_window_ms=0.0),
            default_radar_config=radar_config,
        ) as client:
            responses = client.sense_many(
                [requests[s] for s in reversed(seeds)]
            )
            second = dict(zip(reversed(seeds), responses))
        for s in seeds:
            assert np.array_equal(first[s].result.raw_profiles,
                                  second[s].result.raw_profiles)
            for got, want in zip(first[s].result.profiles,
                                 second[s].result.profiles):
                assert np.array_equal(got.power, want.power)

    def test_distinct_radar_configs_batch_separately_and_correctly(
            self, scene):
        config_a = fast_radar_config()
        config_b = fast_radar_config(frame_rate=20.0)
        direct_a = FmcwRadar(config_a).sense(scene, 0.3,
                                             rng=np.random.default_rng(2))
        direct_b = FmcwRadar(config_b).sense(scene, 0.3,
                                             rng=np.random.default_rng(2))
        requests = [
            SenseRequest(scene=scene, duration=0.3, seed=2, config=config_a),
            SenseRequest(scene=scene, duration=0.3, seed=2, config=config_b),
        ]
        with InProcessClient(quick_service_config(),
                             default_radar_config=config_a) as client:
            served_a, served_b = client.sense_many(requests)
        assert np.array_equal(served_a.result.raw_profiles,
                              direct_a.raw_profiles)
        assert np.array_equal(served_b.result.raw_profiles,
                              direct_b.raw_profiles)
        assert len(served_a.result.times) == len(direct_a.times)
        assert len(served_b.result.times) == len(direct_b.times)
        assert len(served_b.result.times) > len(served_a.result.times)


class BlockableExecute:
    """An injectable execute callable that parks until released."""

    def __init__(self):
        self.release = threading.Event()
        self.calls = 0

    def __call__(self, items):
        self.calls += 1
        assert self.release.wait(timeout=30.0), "test never released executor"
        return serve_engine.execute_batch(items)


class TestSaturationAndDeadlines:
    def test_full_queue_rejects_with_overload_error(self, scene,
                                                    radar_config):
        blocker = BlockableExecute()

        async def run() -> dict:
            service = SenseService(
                quick_service_config(max_batch_size=1, batch_window_ms=0.0,
                                     queue_depth=2, workers=1),
                default_radar_config=radar_config,
                execute=blocker,
            )
            async with service:
                request = SenseRequest(scene=scene, duration=0.3, seed=0)
                # First request: flushed instantly, occupies the one worker
                # (blocked inside the executor), leaving the queue empty.
                first = asyncio.ensure_future(service.submit(request))
                while blocker.calls == 0:
                    await asyncio.sleep(0.001)
                # Two more fill the admission queue.
                second = asyncio.ensure_future(service.submit(request))
                third = asyncio.ensure_future(service.submit(request))
                await asyncio.sleep(0.01)
                with pytest.raises(ServiceOverloadedError):
                    await service.submit(request)
                rejected_count = service.metrics.counter(
                    "requests.rejected").value
                blocker.release.set()
                responses = await asyncio.gather(first, second, third)
            return {"rejected": rejected_count, "responses": responses}

        outcome = asyncio.run(run())
        assert outcome["rejected"] == 1
        assert len(outcome["responses"]) == 3
        assert all(r.backend == BACKEND_VECTORIZED
                   for r in outcome["responses"])

    def test_expired_deadline_cancels_queued_work(self, scene, radar_config):
        blocker = BlockableExecute()

        async def run() -> int:
            service = SenseService(
                quick_service_config(max_batch_size=1, batch_window_ms=0.0,
                                     workers=1),
                default_radar_config=radar_config,
                execute=blocker,
            )
            async with service:
                hold = asyncio.ensure_future(service.submit(
                    SenseRequest(scene=scene, duration=0.3, seed=0)
                ))
                while blocker.calls == 0:
                    await asyncio.sleep(0.001)
                doomed = asyncio.ensure_future(service.submit(
                    SenseRequest(scene=scene, duration=0.3, seed=1,
                                 deadline_s=0.02)
                ))
                await asyncio.sleep(0.05)  # let the deadline lapse in queue
                calls_before_release = blocker.calls
                blocker.release.set()
                with pytest.raises(DeadlineExceededError):
                    await doomed
                await hold
                # The doomed request never reached the executor: only the
                # holding request's batch was executed.
                assert blocker.calls == calls_before_release == 1
                return service.metrics.counter("requests.expired").value

        assert asyncio.run(run()) == 1

    def test_submit_to_stopped_service_raises_closed(self, scene,
                                                     radar_config):
        async def run() -> None:
            service = SenseService(quick_service_config(),
                                   default_radar_config=radar_config)
            with pytest.raises(ServiceClosedError):
                await service.submit(
                    SenseRequest(scene=scene, duration=0.3, seed=0)
                )

        asyncio.run(run())


class TestGracefulDegradation:
    def test_vectorized_failure_falls_back_to_naive(self, monkeypatch, scene,
                                                    radar_config):
        def explode(key, items):
            raise RuntimeError("injected vectorized failure")

        monkeypatch.setattr(serve_engine, "_run_group_vectorized", explode)
        radar = FmcwRadar(radar_config)
        expected = radar.sense(scene, 0.3, rng=np.random.default_rng(5),
                               synth="naive", pipeline="naive")

        with InProcessClient(quick_service_config(),
                             default_radar_config=radar_config) as client:
            response = client.sense(
                SenseRequest(scene=scene, duration=0.3, seed=5)
            )
            snapshot = client.metrics_snapshot()

        assert response.backend == BACKEND_NAIVE_FALLBACK
        assert np.array_equal(response.result.raw_profiles,
                              expected.raw_profiles)
        for got, want in zip(response.result.profiles, expected.profiles):
            assert np.array_equal(got.power, want.power)
        assert snapshot["counters"]["batches.fallback"] >= 1
        assert snapshot["counters"]["requests.completed"] == 1


class TestTelemetry:
    def test_snapshot_reports_counts_batches_and_latency(self, scene,
                                                         radar_config):
        requests = [SenseRequest(scene=scene, duration=0.3, seed=s)
                    for s in range(6)]
        with InProcessClient(quick_service_config(),
                             default_radar_config=radar_config) as client:
            responses = client.sense_many(requests)
            snapshot = client.metrics_snapshot()
            as_json = client.service.metrics.to_json()

        counters = snapshot["counters"]
        assert counters["requests.submitted"] == 6
        assert counters["requests.completed"] == 6
        assert counters["batches.executed"] >= 1

        batch_hist = snapshot["histograms"]["batch.size"]
        assert batch_hist["count"] == counters["batches.executed"]
        assert batch_hist["sum"] == 6.0
        assert any(bucket["count"] for bucket in batch_hist["buckets"])

        latency_hist = snapshot["histograms"]["request.latency_s"]
        assert latency_hist["count"] == 6
        assert 0.0 <= latency_hist["p50"] <= latency_hist["p95"]

        assert snapshot["gauges"]["queue.depth"] == 0.0
        assert json.loads(as_json) == json.loads(
            json.dumps(snapshot, sort_keys=True)
        )
        assert {r.batch_size for r in responses} <= {1, 2, 3, 4}

    def test_snapshot_accepts_caller_supplied_stamps(self):
        # The SessionStore now= convention: the registry never reads a
        # clock, so a snapshot stamped by the caller is byte-for-byte
        # reproducible — the property the audit ledger depends on.
        from repro.serve.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.inc("requests.submitted", 2)
        stamped = registry.snapshot(now=42.5, sequence=3)
        assert stamped["now"] == 42.5
        assert stamped["sequence"] == 3
        bare = registry.snapshot()
        assert "now" not in bare and "sequence" not in bare
        assert (registry.to_json(now=42.5, sequence=3)
                == registry.to_json(now=42.5, sequence=3))


class TestResponseMetadata:
    def test_batch_size_and_timings_populated(self, scene, radar_config):
        with InProcessClient(
            quick_service_config(max_batch_size=8, batch_window_ms=20.0),
            default_radar_config=radar_config,
        ) as client:
            responses = client.sense_many(
                [SenseRequest(scene=scene, duration=0.3, seed=s)
                 for s in range(4)]
            )
        for response in responses:
            assert 1 <= response.batch_size <= 4
            assert response.queued_s >= 0.0
            assert response.total_s >= response.queued_s

    def test_request_ids_are_admission_ordered(self, scene, radar_config):
        with InProcessClient(quick_service_config(),
                             default_radar_config=radar_config) as client:
            responses = client.sense_many(
                [SenseRequest(scene=scene, duration=0.3, seed=s)
                 for s in range(3)]
            )
        ids = [r.request_id for r in responses]
        assert ids == sorted(ids)
