"""Tests for the serving layer's stateful tracking sessions.

Pins the session subsystem's contracts:

- **lifecycle** — create → ingest → idle-evict (park) → restore resumes
  with *identical* tracker state (checkpoint round-trip equality), and
  restored sessions keep their persistent track IDs;
- **bounded memory** — the two-tier store never holds more than
  ``max_live`` live trackers or ``max_sessions`` sessions total, under a
  ≥200-session concurrent soak, with clean metric deltas;
- **service integration** — tracked requests ride the ordinary
  admission/batching path, session continuity spans requests, the
  flusher's eviction sweep parks idle sessions end to end, and exported
  checkpoints restore into new sessions.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.errors import ConfigurationError, SessionNotFoundError
from repro.geometry import Rectangle
from repro.radar import Scene, TrackerConfig
from repro.serve import (
    InProcessClient,
    MetricsRegistry,
    SenseService,
    SessionConfig,
    SessionStore,
    TrackRequest,
)
from tests.test_serve_service import fast_radar_config, quick_service_config

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

#: Short-scene tracker config for detection-level session tests.
TRACKER_CONFIG = TrackerConfig(min_track_points=3, min_hit_ratio=0.2)


def walk_frames(num_frames: int, *, start=(1.0, 1.0), velocity=(0.3, 0.1),
                power=10.0, t0=0.0, dt=0.1):
    """Detection frames of one constant-velocity walker."""
    frames = []
    for i in range(num_frames):
        t = t0 + i * dt
        position = np.array([start[0] + velocity[0] * i * dt,
                             start[1] + velocity[1] * i * dt],
                            dtype=np.float64)
        frames.append((t, [(position, power)]))
    return frames


def ingest(store: SessionStore, session_id: str, frames, *,
           now: float) -> None:
    session = store.get(session_id, now=now)
    assert session.tracker is not None
    for t, detections in frames:
        session.tracker.ingest_detections(t, detections)
    store.record_frames(session, len(frames), now=now)


class TestSessionConfig:
    @pytest.mark.parametrize("kwargs", [
        {"max_live": 0},
        {"max_live": 8, "max_sessions": 4},
        {"idle_timeout_s": 0.0},
        {"sweep_interval_s": 0.0},
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            SessionConfig(**kwargs)

    def test_from_env_reads_session_knobs(self, monkeypatch):
        monkeypatch.setenv("RF_PROTECT_SESSION_MAX_LIVE", "7")
        monkeypatch.setenv("RF_PROTECT_SESSION_MAX_SESSIONS", "21")
        monkeypatch.setenv("RF_PROTECT_SESSION_IDLE_S", "3.5")
        monkeypatch.setenv("RF_PROTECT_SESSION_SWEEP_S", "0.25")
        config = SessionConfig.from_env()
        assert config.max_live == 7
        assert config.max_sessions == 21
        assert config.idle_timeout_s == 3.5
        assert config.sweep_interval_s == 0.25


class TestSessionStoreLifecycle:
    def store(self, **overrides) -> SessionStore:
        defaults = dict(max_live=4, max_sessions=8, idle_timeout_s=10.0,
                        sweep_interval_s=1.0)
        defaults.update(overrides)
        return SessionStore(SessionConfig(**defaults),
                            default_tracker_config=TRACKER_CONFIG)

    def test_create_get_remove(self):
        store = self.store()
        session = store.create("alpha", now=0.0)
        assert session.session_id == "alpha"
        assert "alpha" in store
        assert store.get("alpha", now=1.0) is session
        store.remove("alpha")
        with pytest.raises(SessionNotFoundError):
            store.get("alpha", now=2.0)

    def test_duplicate_id_rejected(self):
        store = self.store()
        store.create("alpha", now=0.0)
        with pytest.raises(ConfigurationError):
            store.create("alpha", now=1.0)

    def test_auto_ids_are_unique(self):
        store = self.store()
        ids = {store.create(now=float(i)).session_id for i in range(4)}
        assert len(ids) == 4

    def test_park_and_restore_is_exact(self):
        store = self.store()
        store.create("walker", now=0.0)
        ingest(store, "walker", walk_frames(12), now=0.0)
        before = store.checkpoint_of("walker")
        store.park("walker")
        parked = store.peek("walker")
        assert not parked.live
        # The parked blob survives a JSON text round trip unchanged.
        assert json.loads(json.dumps(parked.checkpoint)) == before

        session = store.get("walker", now=1.0)
        assert session.live
        assert session.tracker is not None
        assert session.tracker.checkpoint() == before
        tracks = session.tracker.tracks()
        assert len(tracks) == 1
        assert tracks[0].track_id == 1

    def test_restored_session_continues_identically(self):
        """Park/restore mid-stream produces the uninterrupted outcome."""
        first, second = walk_frames(8), walk_frames(8, t0=0.8)
        straight = self.store()
        straight.create("s", now=0.0)
        ingest(straight, "s", first + second, now=0.0)

        parked = self.store()
        parked.create("p", now=0.0)
        ingest(parked, "p", first, now=0.0)
        parked.park("p")
        ingest(parked, "p", second, now=1.0)

        assert (parked.checkpoint_of("p")["active"]
                == straight.checkpoint_of("s")["active"])

    def test_idle_eviction_parks_only_stale_sessions(self):
        store = self.store(idle_timeout_s=5.0)
        store.create("old", now=0.0)
        store.create("fresh", now=0.0)
        store.get("fresh", now=8.0)
        assert store.evict_idle(9.0) == 1
        assert not store.peek("old").live
        assert store.peek("fresh").live

    def test_eviction_skips_locked_sessions(self):
        store = self.store(idle_timeout_s=1.0)
        store.create("busy", now=0.0)

        async def run() -> int:
            session = store.peek("busy")
            async with session.lock:
                return store.evict_idle(100.0)

        assert asyncio.run(run()) == 0
        assert store.peek("busy").live

    def test_live_bound_parks_lru(self):
        store = self.store(max_live=2, max_sessions=8)
        store.create("a", now=0.0)
        store.create("b", now=1.0)
        store.create("c", now=2.0)
        assert store.live_count == 2
        assert not store.peek("a").live
        assert store.peek("b").live and store.peek("c").live

    def test_total_bound_drops_lru_parked(self):
        store = self.store(max_live=2, max_sessions=3)
        for i in range(5):
            store.create(f"s{i}", now=float(i))
        assert len(store) == 3
        assert store.live_count <= 2
        # The most recent sessions survive; the oldest were dropped.
        assert "s4" in store and "s3" in store
        assert "s0" not in store


class TestSessionSoak:
    def test_soak_200_sessions_bounded_memory_and_clean_metrics(self):
        """≥200 concurrent sessions under tight live/total bounds.

        Every session keeps ingesting across rounds (so parked sessions
        are restored on touch), the live-tracker population stays within
        ``max_live`` throughout, and the metric deltas balance.
        """
        metrics = MetricsRegistry()
        config = SessionConfig(max_live=16, max_sessions=512,
                               idle_timeout_s=30.0, sweep_interval_s=1.0)
        store = SessionStore(config, default_tracker_config=TRACKER_CONFIG,
                             metrics=metrics)
        num_sessions = 220
        frames_per_round = 6
        now = 0.0
        for i in range(num_sessions):
            now += 1.0
            store.create(f"soak-{i}", now=now)
            ingest(store, f"soak-{i}",
                   walk_frames(frames_per_round, start=(0.5 + 0.01 * i, 1.0)),
                   now=now)
            assert store.live_count <= config.max_live
            assert len(store) <= config.max_sessions

        # Second round: touch every session again (restores parked ones),
        # continuing each walk where it left off.
        for i in range(num_sessions):
            now += 1.0
            ingest(store, f"soak-{i}",
                   walk_frames(frames_per_round,
                               start=(0.5 + 0.01 * i
                                      + 0.3 * frames_per_round * 0.1, 1.0),
                               t0=frames_per_round * 0.1),
                   now=now)
            assert store.live_count <= config.max_live

        assert len(store) == num_sessions
        for i in range(0, num_sessions, 37):
            session = store.get(f"soak-{i}", now=now)
            assert session.tracker is not None
            assert session.tracker.frames_ingested == 2 * frames_per_round
            tracks = session.tracker.tracks()
            assert len(tracks) == 1 and tracks[0].track_id == 1

        snapshot = metrics.snapshot()
        counters = snapshot["counters"]
        gauges = snapshot["gauges"]
        assert counters["sessions.created"] == num_sessions
        assert counters["sessions.frames"] == (2 * frames_per_round
                                               * num_sessions)
        # Every restore matches a prior parking, and the final gauges
        # account for every retained session.
        assert counters["sessions.restored"] <= counters["sessions.parked"]
        assert counters["sessions.restored"] >= num_sessions - config.max_live
        assert (gauges["sessions.live"] + gauges["sessions.parked"]
                == len(store))
        assert gauges["sessions.live"] <= config.max_live


@pytest.fixture(scope="module")
def tracked_scene() -> Scene:
    room = Rectangle.from_size(4.0, 4.0)
    built = Scene(room)
    walk = np.linspace([1.0, 1.0], [3.0, 3.0], 60)
    from repro.types import Trajectory
    built.add_human(Trajectory(walk, dt=0.1))
    return built


class TestServiceSessions:
    def test_tracked_requests_span_one_session(self, tracked_scene):
        config = fast_radar_config()
        with InProcessClient(quick_service_config(),
                             default_radar_config=config) as client:
            session_id = client.create_session(
                tracker_config=TRACKER_CONFIG)
            first = client.track(TrackRequest(
                session_id=session_id, scene=tracked_scene, duration=0.5,
                seed=3,
            ))
            second = client.track(TrackRequest(
                session_id=session_id, scene=tracked_scene, duration=0.5,
                seed=3,
            ))
        assert first.frames_added > 0
        assert second.frames_total == (first.frames_added
                                       + second.frames_added)
        # Continuity: the second chunk continued scene time, and the
        # walker kept its persistent identity across requests.
        assert second.session_id == session_id
        assert first.active_tracks
        best_first = max(first.active_tracks, key=lambda t: t.num_points)
        survivors = {t.track_id: t for t in second.active_tracks}
        assert best_first.track_id in survivors
        walker = survivors[best_first.track_id]
        assert walker.num_points > best_first.num_points

    def test_unknown_session_rejected_before_sensing(self, tracked_scene):
        config = fast_radar_config()
        with InProcessClient(quick_service_config(),
                             default_radar_config=config) as client:
            with pytest.raises(SessionNotFoundError):
                client.track(TrackRequest(
                    session_id="ghost", scene=tracked_scene, duration=0.4,
                ))
            snapshot = client.metrics_snapshot()
        counters = snapshot["counters"]
        assert isinstance(counters, dict)
        assert counters.get("requests.submitted", 0) == 0

    def test_checkpoint_restore_round_trip_through_service(
            self, tracked_scene):
        config = fast_radar_config()
        with InProcessClient(quick_service_config(),
                             default_radar_config=config) as client:
            session_id = client.create_session(
                tracker_config=TRACKER_CONFIG)
            client.track(TrackRequest(
                session_id=session_id, scene=tracked_scene, duration=0.5,
                seed=5,
            ))
            blob = client.end_session(session_id)
            assert session_id not in client.service.sessions

            restored_id = client.restore_session("revived",
                                                 json.loads(json.dumps(blob)))
            response = client.track(TrackRequest(
                session_id=restored_id, scene=tracked_scene, duration=0.5,
                seed=5,
            ))
            reference = client.service.sessions.checkpoint_of(restored_id)

            # The same two chunks through one uninterrupted session give
            # byte-identical tracker state.
            straight_id = client.create_session(
                tracker_config=TRACKER_CONFIG)
            for seed in (5, 5):
                client.track(TrackRequest(
                    session_id=straight_id, scene=tracked_scene,
                    duration=0.5, seed=seed,
                ))
            straight = client.service.sessions.checkpoint_of(straight_id)
        assert response.frames_total == len(reference["frame_times"])
        assert reference["active"] == straight["active"]
        assert reference["frame_times"] == straight["frame_times"]

    def test_live_bound_restored_after_concurrent_burst(self, tracked_scene):
        """max_live overshoots only while requests are in flight.

        Sessions mid-ingestion hold their lock and cannot be parked, so a
        5-way concurrent burst against ``max_live=2`` legitimately runs 5
        live trackers — but as the burst drains, finishing requests
        rebalance the store back under the bound.
        """
        config = fast_radar_config()

        async def run() -> int:
            service = SenseService(
                quick_service_config(),
                default_radar_config=config,
                session_config=SessionConfig(max_live=2, max_sessions=16),
            )
            async with service:
                ids = [await service.create_session(
                    tracker_config=TRACKER_CONFIG) for _ in range(5)]
                await asyncio.gather(*(
                    service.submit_tracked(TrackRequest(
                        session_id=session_id, scene=tracked_scene,
                        duration=0.4, seed=0,
                    ))
                    for session_id in ids
                ))
                return service.sessions.live_count

        assert asyncio.run(run()) <= 2

    def test_flusher_sweep_parks_idle_sessions(self, tracked_scene):
        config = fast_radar_config()

        async def run() -> dict:
            service = SenseService(
                quick_service_config(batch_window_ms=2.0),
                default_radar_config=config,
                session_config=SessionConfig(idle_timeout_s=0.05,
                                             sweep_interval_s=0.02),
            )
            async with service:
                session_id = await service.create_session(
                    tracker_config=TRACKER_CONFIG)
                await service.submit_tracked(TrackRequest(
                    session_id=session_id, scene=tracked_scene,
                    duration=0.4, seed=1,
                ))
                for _ in range(100):
                    if not service.sessions.peek(session_id).live:
                        break
                    await asyncio.sleep(0.02)
                parked = not service.sessions.peek(session_id).live
                evicted = service.metrics.counter("sessions.evicted").value

                # Touching the parked session restores it transparently.
                response = await service.submit_tracked(TrackRequest(
                    session_id=session_id, scene=tracked_scene,
                    duration=0.4, seed=2,
                ))
            return {"parked": parked, "evicted": evicted,
                    "frames_total": response.frames_total,
                    "frames_added": response.frames_added,
                    "restored": service.metrics.counter(
                        "sessions.restored").value}

        outcome = asyncio.run(run())
        assert outcome["parked"]
        assert outcome["evicted"] >= 1
        assert outcome["restored"] >= 1
        assert outcome["frames_total"] > outcome["frames_added"]
