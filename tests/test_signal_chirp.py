"""Tests for repro.signal.chirp: the FMCW arithmetic of Sec. 3 / Eq. 1-3."""

import numpy as np
import pytest

from repro import constants
from repro.errors import ConfigurationError
from repro.signal import ChirpConfig


class TestChirpConfigValidation:
    def test_defaults_match_paper(self):
        chirp = ChirpConfig()
        assert chirp.start_frequency == pytest.approx(6.0e9)
        assert chirp.bandwidth == pytest.approx(1.0e9)
        assert chirp.duration == pytest.approx(500e-6)

    @pytest.mark.parametrize("field, value", [
        ("start_frequency", 0.0),
        ("bandwidth", -1.0),
        ("duration", 0.0),
        ("sample_rate", 0.0),
    ])
    def test_rejects_nonpositive(self, field, value):
        with pytest.raises(ConfigurationError):
            ChirpConfig(**{field: value})

    def test_rejects_too_few_samples(self):
        with pytest.raises(ConfigurationError):
            ChirpConfig(duration=1e-6, sample_rate=1e6)


class TestDerivedQuantities:
    def test_slope(self):
        chirp = ChirpConfig()
        assert chirp.slope == pytest.approx(1e9 / 500e-6)

    def test_range_resolution_is_15cm(self):
        # C / (2B) for a 1 GHz sweep (Sec. 3).
        assert ChirpConfig().range_resolution == pytest.approx(0.15, abs=0.001)

    def test_wavelength_at_band_center(self):
        chirp = ChirpConfig()
        assert chirp.center_frequency == pytest.approx(6.5e9)
        assert chirp.wavelength == pytest.approx(
            constants.SPEED_OF_LIGHT / 6.5e9
        )

    def test_num_samples(self):
        chirp = ChirpConfig(sample_rate=2e6)
        assert chirp.num_samples == 1000

    def test_sample_times_span_duration(self):
        chirp = ChirpConfig()
        times = chirp.sample_times()
        assert times[0] == 0.0
        assert times[-1] == pytest.approx(chirp.duration - 1 / chirp.sample_rate)


class TestDistanceBeatMapping:
    def test_distance_to_delay_roundtrip(self):
        chirp = ChirpConfig()
        assert chirp.delay_to_distance(chirp.distance_to_delay(7.3)) == \
            pytest.approx(7.3)

    def test_beat_frequency_roundtrip(self):
        chirp = ChirpConfig()
        distance = 5.0
        beat = chirp.distance_to_beat_frequency(distance)
        assert chirp.beat_frequency_to_distance(beat) == pytest.approx(distance)

    def test_beat_frequency_scale(self):
        # 5 m -> tau = 33.3 ns -> f_b = sl * tau = 2e12 * 33.3e-9 ~ 66.7 kHz
        chirp = ChirpConfig()
        assert chirp.distance_to_beat_frequency(5.0) == pytest.approx(
            66.7e3, rel=0.01
        )

    def test_max_unambiguous_range(self):
        chirp = ChirpConfig(sample_rate=2e6)
        # fs/2 = 1 MHz -> distance = C * 1e6 / (2 * 2e12) = 75 m
        assert chirp.max_unambiguous_range == pytest.approx(75.0, rel=0.01)


class TestSwitchFrequencyMapping:
    """Eq. 3: the RF-Protect distance-spoofing relation."""

    def test_offset_roundtrip(self):
        chirp = ChirpConfig()
        offset = 3.7
        frequency = chirp.switch_frequency_for_offset(offset)
        assert chirp.offset_for_switch_frequency(frequency) == \
            pytest.approx(offset)

    def test_paper_scale_tens_of_khz(self):
        # The paper says home-scale shifts need "tens to hundred kHz".
        chirp = ChirpConfig()
        f_low = float(chirp.switch_frequency_for_offset(1.0))
        f_high = float(chirp.switch_frequency_for_offset(10.0))
        assert 10e3 <= f_low <= 30e3
        assert 100e3 <= f_high <= 200e3

    def test_linear_in_offset(self):
        chirp = ChirpConfig()
        f1 = chirp.switch_frequency_for_offset(1.0)
        f4 = chirp.switch_frequency_for_offset(4.0)
        assert f4 == pytest.approx(4.0 * f1)

    def test_slope_change_rescales_distance(self):
        # Sec. 5.1: a different slope scales spoofed distances, preserving
        # the trajectory structure.
        slow = ChirpConfig(duration=1000e-6)
        fast = ChirpConfig(duration=500e-6)
        frequency = 50e3
        ratio = (slow.offset_for_switch_frequency(frequency)
                 / fast.offset_for_switch_frequency(frequency))
        assert ratio == pytest.approx(2.0)


class TestCarrierPhase:
    def test_phase_change_per_wavelength(self):
        # Moving the reflector by lambda/2 (round trip = lambda) rotates the
        # carrier phase by 2 pi — the breathing observable.
        chirp = ChirpConfig()
        wavelength_at_start = constants.SPEED_OF_LIGHT / chirp.start_frequency
        delta = (chirp.carrier_phase(2.0 + wavelength_at_start / 2)
                 - chirp.carrier_phase(2.0))
        assert delta == pytest.approx(2.0 * np.pi, rel=1e-9)
