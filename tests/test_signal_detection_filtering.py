"""Tests for repro.signal.detection and repro.signal.filtering."""

import numpy as np
import pytest

from repro.errors import SignalProcessingError
from repro.signal import (
    cfar_threshold,
    detect_peaks_2d,
    median_filter,
    moving_average,
    reject_outliers,
    smooth_trajectory,
)


class TestCfarThreshold:
    def test_flat_noise_gives_flat_threshold(self):
        power = np.ones(64)
        threshold = cfar_threshold(power, scale=4.0)
        assert threshold == pytest.approx(np.full(64, 4.0))

    def test_target_does_not_inflate_own_threshold(self):
        power = np.ones(64)
        power[32] = 100.0
        threshold = cfar_threshold(power, guard_cells=2, training_cells=8)
        # The guard band keeps the target cell out of its own noise estimate.
        assert threshold[32] < power[32]

    def test_threshold_rises_near_strong_cell(self):
        power = np.ones(64)
        power[32] = 100.0
        threshold = cfar_threshold(power)
        assert threshold[36] > threshold[10]

    def test_rejects_short_input(self):
        with pytest.raises(SignalProcessingError):
            cfar_threshold(np.ones(5), guard_cells=2, training_cells=8)

    def test_rejects_bad_params(self):
        with pytest.raises(SignalProcessingError):
            cfar_threshold(np.ones(64), training_cells=0)


class TestDetectPeaks2d:
    def _map_with_peaks(self, *peaks):
        grid = np.zeros((40, 40))
        for row, col, value in peaks:
            grid[row, col] = value
        return grid

    def test_finds_single_peak(self):
        grid = self._map_with_peaks((10, 20, 5.0))
        peaks = detect_peaks_2d(grid, threshold=1.0)
        assert len(peaks) == 1
        assert (peaks[0].range_index, peaks[0].angle_index) == (10, 20)
        assert peaks[0].power == pytest.approx(5.0)

    def test_threshold_excludes_weak(self):
        grid = self._map_with_peaks((10, 20, 5.0), (30, 5, 0.5))
        peaks = detect_peaks_2d(grid, threshold=1.0)
        assert len(peaks) == 1

    def test_orders_strongest_first(self):
        grid = self._map_with_peaks((10, 10, 3.0), (30, 30, 7.0))
        peaks = detect_peaks_2d(grid, threshold=1.0,
                                sidelobe_rejection_db=None)
        assert peaks[0].power == pytest.approx(7.0)

    def test_angle_sidelobe_rejected_same_range_ring(self):
        # Weak peak at the same range, offset angle: classic beamforming
        # sidelobe -> rejected.
        grid = self._map_with_peaks((10, 10, 100.0), (10, 25, 1.0))
        peaks = detect_peaks_2d(grid, threshold=0.5,
                                sidelobe_rejection_db=12.0)
        assert len(peaks) == 1

    def test_comparable_target_same_range_survives(self):
        grid = self._map_with_peaks((10, 10, 100.0), (10, 25, 50.0))
        peaks = detect_peaks_2d(grid, threshold=0.5,
                                sidelobe_rejection_db=12.0)
        assert len(peaks) == 2

    def test_range_sidelobe_rejected_same_angle(self):
        # Very weak peak at the same angle, offset range: range-FFT window
        # sidelobe -> rejected.
        grid = self._map_with_peaks((10, 10, 100.0), (14, 10, 0.6))
        peaks = detect_peaks_2d(grid, threshold=0.5,
                                sidelobe_rejection_db=12.0,
                                range_sidelobe_rejection_db=20.0)
        assert len(peaks) == 1

    def test_distinct_targets_far_apart_both_found(self):
        grid = self._map_with_peaks((5, 5, 100.0), (30, 30, 0.8))
        peaks = detect_peaks_2d(grid, threshold=0.5)
        assert len(peaks) == 2

    def test_max_peaks(self):
        grid = self._map_with_peaks((5, 5, 5.0), (15, 30, 4.0), (30, 10, 3.0))
        peaks = detect_peaks_2d(grid, threshold=0.5, max_peaks=2,
                                sidelobe_rejection_db=None)
        assert len(peaks) == 2

    def test_rejects_non_2d(self):
        with pytest.raises(SignalProcessingError):
            detect_peaks_2d(np.zeros(10), threshold=1.0)

    def test_tiny_map_returns_empty(self):
        assert detect_peaks_2d(np.zeros((2, 2)), threshold=0.0) == []


class TestMovingAverage:
    def test_constant_signal_unchanged(self):
        values = np.full(10, 3.0)
        assert moving_average(values, 5) == pytest.approx(values)

    def test_window_one_is_identity(self):
        values = np.arange(6.0)
        assert moving_average(values, 1) == pytest.approx(values)

    def test_shrinks_at_edges(self):
        values = np.array([0.0, 0.0, 9.0, 0.0, 0.0])
        smoothed = moving_average(values, 3)
        assert smoothed[0] == pytest.approx(0.0)  # edge mean of [0, 0]
        assert smoothed[2] == pytest.approx(3.0)

    def test_2d_input(self):
        values = np.column_stack([np.arange(8.0), np.arange(8.0) * 2])
        smoothed = moving_average(values, 3)
        assert smoothed.shape == values.shape
        # Linear signals are fixed points of centered averaging (interior).
        assert smoothed[3] == pytest.approx(values[3])

    def test_rejects_empty(self):
        with pytest.raises(SignalProcessingError):
            moving_average(np.empty(0), 3)


class TestMedianFilter:
    def test_removes_single_spike(self):
        values = np.array([1.0, 1.0, 50.0, 1.0, 1.0])
        filtered = median_filter(values, 3)
        assert filtered[2] == pytest.approx(1.0)

    def test_window_one_is_identity(self):
        values = np.array([3.0, 1.0, 2.0])
        assert median_filter(values, 1) == pytest.approx(values)


class TestRejectOutliers:
    def test_replaces_teleport(self):
        positions = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0], [0.2, 0.0]])
        cleaned = reject_outliers(positions, max_jump=1.0)
        assert cleaned[2] == pytest.approx([0.1, 0.0])

    def test_keeps_plausible_motion(self):
        positions = np.array([[0.0, 0.0], [0.3, 0.0], [0.6, 0.1]])
        cleaned = reject_outliers(positions, max_jump=1.0)
        assert cleaned == pytest.approx(positions)

    def test_rejects_bad_max_jump(self):
        with pytest.raises(SignalProcessingError):
            reject_outliers(np.zeros((3, 2)), max_jump=0.0)


class TestSmoothTrajectory:
    def test_preserves_shape(self):
        positions = np.column_stack([np.linspace(0, 5, 30),
                                     np.linspace(0, 2, 30)])
        smoothed = smooth_trajectory(positions, window=5)
        assert smoothed.shape == positions.shape

    def test_reduces_noise_variance(self, rng):
        clean = np.column_stack([np.linspace(0, 5, 100),
                                 np.zeros(100)])
        noisy = clean + rng.normal(0, 0.2, clean.shape)
        smoothed = smooth_trajectory(noisy, window=7)
        noisy_error = np.linalg.norm(noisy - clean, axis=1).mean()
        smooth_error = np.linalg.norm(smoothed - clean, axis=1).mean()
        assert smooth_error < noisy_error / 1.5
