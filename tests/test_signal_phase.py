"""Tests for repro.signal.phase: phase extraction and period estimation."""

import numpy as np
import pytest

from repro.errors import SignalProcessingError
from repro.signal import dominant_period, extract_phase, unwrap_phase


class TestExtractPhase:
    def test_reads_correct_bin(self):
        frames = np.ones((5, 8), dtype=complex)
        frames[:, 3] = np.exp(1j * np.linspace(0, 1, 5))
        phase = extract_phase(frames, 3)
        assert phase == pytest.approx(np.linspace(0, 1, 5))

    def test_rejects_bad_bin(self):
        with pytest.raises(SignalProcessingError):
            extract_phase(np.ones((5, 8), dtype=complex), 8)

    def test_rejects_1d_input(self):
        with pytest.raises(SignalProcessingError):
            extract_phase(np.ones(8, dtype=complex), 0)


class TestUnwrapPhase:
    def test_unwraps_monotone_ramp(self):
        true_phase = np.linspace(0, 6 * np.pi, 100)
        wrapped = np.angle(np.exp(1j * true_phase))
        unwrapped = unwrap_phase(wrapped)
        assert unwrapped - unwrapped[0] == pytest.approx(
            true_phase - true_phase[0], abs=1e-9
        )

    def test_rejects_empty(self):
        with pytest.raises(SignalProcessingError):
            unwrap_phase(np.empty(0))


class TestDominantPeriod:
    def test_recovers_sinusoid_period(self):
        dt = 0.1
        t = np.arange(0, 40, dt)
        series = 0.3 * np.sin(2 * np.pi * t / 4.0)
        assert dominant_period(series, dt) == pytest.approx(4.0, rel=0.05)

    def test_ignores_linear_trend(self):
        dt = 0.1
        t = np.arange(0, 40, dt)
        series = 0.1 * np.sin(2 * np.pi * t / 5.0) + 0.5 * t
        assert dominant_period(series, dt) == pytest.approx(5.0, rel=0.05)

    def test_band_limits_respected(self):
        dt = 0.05
        t = np.arange(0, 40, dt)
        # 0.5 s oscillation is outside the [1, 15] s band; a weak 6 s one
        # inside the band must win.
        series = np.sin(2 * np.pi * t / 0.5) + 0.1 * np.sin(2 * np.pi * t / 6.0)
        assert dominant_period(series, dt) == pytest.approx(6.0, rel=0.1)

    def test_rejects_too_short_series(self):
        with pytest.raises(SignalProcessingError):
            dominant_period(np.ones(10), dt=0.1, max_period=15.0)

    def test_rejects_bad_band(self):
        series = np.ones(1000)
        with pytest.raises(SignalProcessingError):
            dominant_period(series, dt=0.1, min_period=5.0, max_period=2.0)

    def test_rejects_bad_dt(self):
        with pytest.raises(SignalProcessingError):
            dominant_period(np.ones(100), dt=0.0)
