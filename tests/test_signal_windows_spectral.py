"""Tests for repro.signal.windows and repro.signal.spectral."""

import numpy as np
import pytest

from repro.errors import SignalProcessingError
from repro.signal import ChirpConfig, beat_spectrum, find_spectral_peaks, get_window
from repro.signal.spectral import range_axis, range_fft
from repro.signal.windows import blackman, hamming, hann, rectangular


class TestWindows:
    @pytest.mark.parametrize("factory", [rectangular, hann, hamming, blackman])
    def test_length_and_bounds(self, factory):
        window = factory(64)
        assert window.shape == (64,)
        assert np.all(window <= 1.0 + 1e-12)
        assert np.all(window >= -1e-12)

    @pytest.mark.parametrize("factory", [hann, hamming, blackman])
    def test_symmetry(self, factory):
        window = factory(33)
        assert window == pytest.approx(window[::-1])

    def test_hann_endpoints_zero(self):
        window = hann(17)
        assert window[0] == pytest.approx(0.0, abs=1e-12)
        assert window[-1] == pytest.approx(0.0, abs=1e-12)

    def test_length_one(self):
        for factory in (rectangular, hann, hamming, blackman):
            assert factory(1) == pytest.approx([1.0])

    def test_get_window_by_name(self):
        assert get_window("Hann", 8) == pytest.approx(hann(8))

    def test_get_window_unknown_name(self):
        with pytest.raises(SignalProcessingError):
            get_window("kaiser", 8)

    def test_rejects_zero_length(self):
        with pytest.raises(SignalProcessingError):
            hann(0)


def _beat_tone(chirp: ChirpConfig, distance: float,
               amplitude: float = 1.0) -> np.ndarray:
    t = chirp.sample_times()
    beat = chirp.distance_to_beat_frequency(distance)
    return amplitude * np.exp(1j * 2 * np.pi * beat * t)


class TestRangeFft:
    def test_single_tone_peaks_at_distance(self):
        chirp = ChirpConfig()
        distance = 4.2
        spectrum = beat_spectrum(_beat_tone(chirp, distance), chirp)
        ranges = range_axis(chirp)
        measured = ranges[int(np.argmax(spectrum))]
        assert measured == pytest.approx(distance, abs=chirp.range_resolution)

    def test_two_tones_resolved_beyond_resolution(self):
        chirp = ChirpConfig()
        d1, d2 = 3.0, 3.0 + 4 * chirp.range_resolution
        signal = _beat_tone(chirp, d1) + _beat_tone(chirp, d2)
        spectrum = beat_spectrum(signal, chirp)
        peaks = find_spectral_peaks(spectrum, min_height=spectrum.max() / 10,
                                    min_separation=2, max_peaks=2)
        ranges = range_axis(chirp)
        measured = sorted(ranges[i] for i in peaks)
        assert measured[0] == pytest.approx(d1, abs=chirp.range_resolution)
        assert measured[1] == pytest.approx(d2, abs=chirp.range_resolution)

    def test_multi_antenna_shape(self):
        chirp = ChirpConfig()
        frame = np.vstack([_beat_tone(chirp, 2.0)] * 7)
        profile = range_fft(frame, chirp, zero_pad_factor=2)
        assert profile.shape == (7, chirp.num_samples)

    def test_rejects_wrong_sample_count(self):
        chirp = ChirpConfig()
        with pytest.raises(SignalProcessingError):
            range_fft(np.zeros(10, dtype=complex), chirp)

    def test_rejects_bad_zero_pad(self):
        chirp = ChirpConfig()
        with pytest.raises(SignalProcessingError):
            range_fft(_beat_tone(chirp, 1.0), chirp, zero_pad_factor=0)

    def test_range_axis_monotonic_from_zero(self):
        chirp = ChirpConfig()
        ranges = range_axis(chirp)
        assert ranges[0] == 0.0
        assert np.all(np.diff(ranges) > 0)

    def test_range_axis_bin_width(self):
        chirp = ChirpConfig()
        ranges = range_axis(chirp, zero_pad_factor=2)
        # Zero padding by 2 halves the bin width relative to C/2B.
        assert ranges[1] - ranges[0] == pytest.approx(
            chirp.range_resolution / 2, rel=1e-6
        )


class TestFindSpectralPeaks:
    def test_empty_for_short_input(self):
        assert find_spectral_peaks(np.array([1.0, 2.0])) == []

    def test_finds_interior_maximum(self):
        spectrum = np.array([0.0, 1.0, 5.0, 1.0, 0.0])
        assert find_spectral_peaks(spectrum) == [2]

    def test_strongest_first(self):
        spectrum = np.array([0.0, 3.0, 0.0, 9.0, 0.0, 5.0, 0.0])
        assert find_spectral_peaks(spectrum) == [3, 5, 1]

    def test_min_height_filters(self):
        spectrum = np.array([0.0, 3.0, 0.0, 9.0, 0.0])
        assert find_spectral_peaks(spectrum, min_height=5.0) == [3]

    def test_min_separation_suppresses_neighbours(self):
        spectrum = np.array([0.0, 5.0, 4.0, 6.0, 0.0, 0.0, 3.0, 0.0])
        peaks = find_spectral_peaks(spectrum, min_separation=3)
        assert 3 in peaks
        assert 1 not in peaks  # within 3 bins of the stronger peak at 3

    def test_max_peaks_limits(self):
        spectrum = np.array([0.0, 3.0, 0.0, 9.0, 0.0, 5.0, 0.0])
        assert len(find_spectral_peaks(spectrum, max_peaks=2)) == 2

    def test_rejects_2d(self):
        with pytest.raises(SignalProcessingError):
            find_spectral_peaks(np.zeros((3, 3)))

    def test_rejects_bad_separation(self):
        with pytest.raises(SignalProcessingError):
            find_spectral_peaks(np.zeros(8), min_separation=0)
