"""Tests for the stage-graph executor and kernel registry.

The registry is the single backend-dispatch point (RFP009 enforces that
statically); these tests pin its dynamic behavior — registration,
resolution order (explicit backend > per-call overrides > environment
default), per-stage instrumentation, and the per-call backend knobs on
both radar families — plus the pulsed naive-vs-vectorized receive
equivalence that the shared Beamform stage makes possible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry import Rectangle
from repro.radar import (
    KERNELS,
    RECEIVE_PLAN,
    SENSE_PLAN,
    ExecutionContext,
    FmcwRadar,
    KernelRegistry,
    PulsedRadar,
    PulsedRadarConfig,
    RadarConfig,
    Scene,
    Stage,
    StageBinding,
    UniformLinearArray,
    backend_overrides,
    default_backend,
    execute,
    frame_synthesizer,
    stage_metrics,
    synthesize_frame_naive,
    synthesize_frame_vectorized,
)
from repro.radar.stages import SHARED_BACKEND
from repro.serve.engine import ExecutionItem, execute_batch
from repro.serve.request import BatchKey, SenseRequest
from repro.signal.chirp import ChirpConfig
from repro.types import Trajectory

ATOL = 1e-10


@pytest.fixture(scope="module")
def config() -> RadarConfig:
    return RadarConfig(chirp=ChirpConfig(duration=6.4e-5))


@pytest.fixture(scope="module")
def scene() -> Scene:
    room = Rectangle(0.0, 0.0, 8.0, 6.0)
    built = Scene(room)
    built.add_static((2.0, 3.0))
    walk = Trajectory(np.linspace([2.0, 2.0], [5.0, 4.0], 30), dt=0.1)
    built.add_human(walk)
    return built


def snapshot_counts() -> dict[str, int]:
    histograms = stage_metrics().snapshot()["histograms"]
    return {name: data["count"] for name, data in histograms.items()}


class TestRegistry:
    def test_backend_inventory(self):
        assert KERNELS.backends(Stage.SYNTHESIZE) == ("naive", "vectorized")
        assert KERNELS.backends(Stage.RANGE_FFT) == ("naive", "vectorized")
        assert KERNELS.backends(Stage.BACKGROUND_SUBTRACT) == (
            "naive", "vectorized")
        assert KERNELS.backends(Stage.BEAMFORM) == ("naive", "vectorized")
        assert KERNELS.backends(Stage.EMIT) == (SHARED_BACKEND,)
        assert KERNELS.backends(Stage.DETECT) == (SHARED_BACKEND, "streaming")

    def test_resolve_explicit_backend(self):
        kernel = KERNELS.resolve(Stage.BEAMFORM, "naive")
        assert kernel.stage is Stage.BEAMFORM
        assert kernel.backend == "naive"

    def test_resolve_default_follows_environment(self, monkeypatch):
        monkeypatch.setenv("RF_PROTECT_SYNTH", "naive")
        assert default_backend(Stage.SYNTHESIZE) == "naive"
        assert KERNELS.resolve(Stage.SYNTHESIZE).backend == "naive"
        monkeypatch.setenv("RF_PROTECT_SYNTH", "vectorized")
        assert KERNELS.resolve(Stage.SYNTHESIZE).backend == "vectorized"

    def test_pipeline_stages_follow_pipeline_env(self, monkeypatch):
        monkeypatch.setenv("RF_PROTECT_PIPELINE", "naive")
        for stage in (Stage.RANGE_FFT, Stage.BACKGROUND_SUBTRACT,
                      Stage.BEAMFORM):
            assert default_backend(stage) == "naive"

    def test_shared_stages_ignore_environment(self, monkeypatch):
        monkeypatch.setenv("RF_PROTECT_SYNTH", "naive")
        monkeypatch.setenv("RF_PROTECT_PIPELINE", "naive")
        assert default_backend(Stage.EMIT) == SHARED_BACKEND
        assert default_backend(Stage.DETECT) == SHARED_BACKEND

    def test_unknown_backend_lists_registered(self):
        with pytest.raises(ConfigurationError, match="naive"):
            KERNELS.resolve(Stage.BEAMFORM, "turbo")

    def test_duplicate_registration_rejected(self):
        registry = KernelRegistry()

        @registry.register(Stage.BEAMFORM, "custom")
        def first(ctx):
            pass

        with pytest.raises(ConfigurationError, match="already registered"):
            @registry.register(Stage.BEAMFORM, "custom")
            def second(ctx):
                pass

    def test_backend_overrides_vocabulary(self):
        overrides = backend_overrides(synth="naive", pipeline="vectorized")
        assert overrides[Stage.SYNTHESIZE] == "naive"
        for stage in (Stage.RANGE_FFT, Stage.BACKGROUND_SUBTRACT,
                      Stage.BEAMFORM):
            assert overrides[stage] == "vectorized"
        assert backend_overrides() == {}

    def test_frame_synthesizer_dispatch(self):
        assert frame_synthesizer("naive") is synthesize_frame_naive
        assert frame_synthesizer("vectorized") is synthesize_frame_vectorized
        with pytest.raises(ConfigurationError):
            frame_synthesizer("turbo")


class TestExecutionContext:
    def test_buffer_reused_when_compatible(self, config):
        ctx = ExecutionContext(array=UniformLinearArray(config),
                               times=np.zeros(1))
        first = ctx.buffer("scratch", (4, 3), np.complex128)
        second = ctx.buffer("scratch", (4, 3), np.complex128)
        assert second is first

    def test_buffer_reallocates_on_mismatch(self, config):
        ctx = ExecutionContext(array=UniformLinearArray(config),
                               times=np.zeros(1))
        first = ctx.buffer("scratch", (4, 3), np.complex128)
        assert ctx.buffer("scratch", (5, 3), np.complex128) is not first
        assert ctx.buffer("scratch", (5, 3), np.float64).dtype == np.float64

    def test_buffer_never_returns_readonly(self, config):
        ctx = ExecutionContext(array=UniformLinearArray(config),
                               times=np.zeros(1))
        frozen = np.zeros((2, 2))
        frozen.flags.writeable = False
        ctx.workspace["scratch"] = frozen
        fresh = ctx.buffer("scratch", (2, 2), np.float64)
        assert fresh is not frozen
        assert fresh.flags.writeable


class TestExecutor:
    def test_explicit_kernel_binding_runs_and_is_labeled(self, config):
        calls = []

        def custom(ctx: ExecutionContext) -> None:
            calls.append(ctx)
            ctx.workspace["marker"] = 42

        ctx = ExecutionContext(array=UniformLinearArray(config),
                               times=np.zeros(1))
        before = snapshot_counts()
        execute((StageBinding(Stage.BEAMFORM, kernel=custom),), ctx)
        after = snapshot_counts()
        assert calls == [ctx]
        assert ctx.workspace["marker"] == 42
        assert (after["stages.beamform.wall_s"]
                == before.get("stages.beamform.wall_s", 0) + 1)
        counters = stage_metrics().snapshot()["counters"]
        assert counters["stages.beamform.custom.runs"] >= 1

    def test_binding_backend_beats_context_override(self, config):
        # Pin via StageBinding.backend while ctx.overrides says otherwise:
        # the binding wins and the vectorized run counter moves.
        ctx = ExecutionContext(
            array=UniformLinearArray(config), times=np.zeros(2),
            config=config, overrides={Stage.RANGE_FFT: "naive"},
        )
        ctx.workspace["frames"] = np.zeros(
            (2, config.num_antennas, config.chirp.num_samples), dtype=complex)
        counters_before = dict(stage_metrics().snapshot()["counters"])
        execute((StageBinding(Stage.RANGE_FFT, backend="vectorized"),), ctx)
        counters_after = stage_metrics().snapshot()["counters"]
        assert (counters_after["stages.range_fft.vectorized.runs"]
                == counters_before.get("stages.range_fft.vectorized.runs", 0)
                + 1)
        assert (counters_after.get("stages.range_fft.naive.runs", 0)
                == counters_before.get("stages.range_fft.naive.runs", 0))

    def test_sense_populates_every_stage_histogram(self, config, scene):
        radar = FmcwRadar(config)
        before = snapshot_counts()
        result = radar.sense(scene, 0.5, rng=np.random.default_rng(3))
        result.tracks()
        after = snapshot_counts()
        for stage in Stage:
            name = f"stages.{stage.value}.wall_s"
            assert after.get(name, 0) > before.get(name, 0), name


class TestPerCallOverrides:
    def test_fmcw_backend_knobs_agree(self, config, scene):
        radar = FmcwRadar(config)
        naive = radar.sense(scene, 0.5, rng=np.random.default_rng(7),
                            synth="naive", pipeline="naive")
        vectorized = radar.sense(scene, 0.5, rng=np.random.default_rng(7),
                                 synth="vectorized", pipeline="vectorized")
        for ref, fast in zip(naive.profiles, vectorized.profiles):
            np.testing.assert_allclose(fast.power, ref.power, atol=ATOL)
        np.testing.assert_allclose(vectorized.raw_profiles,
                                   naive.raw_profiles, atol=ATOL)

    def test_fmcw_unknown_backend_rejected(self, config, scene):
        radar = FmcwRadar(config)
        with pytest.raises(ConfigurationError, match="turbo"):
            radar.sense(scene, 0.5, synth="turbo")

    def test_pulsed_receive_backends_agree(self, scene):
        """Satellite: pulsed naive and vectorized receive kernels match.

        Both run through the shared BackgroundSubtract/Beamform stages of
        the registry, so the pulsed radar inherits the same per-call knob
        as the FMCW radar.
        """
        radar = PulsedRadar(PulsedRadarConfig(sample_rate=2.0e9,
                                              max_range=10.0))
        naive = radar.sense(scene, 0.6, rng=np.random.default_rng(5),
                            pipeline="naive")
        vectorized = radar.sense(scene, 0.6, rng=np.random.default_rng(5),
                                 pipeline="vectorized")
        assert len(naive.profiles) == len(vectorized.profiles)
        for ref, fast in zip(naive.profiles, vectorized.profiles):
            np.testing.assert_allclose(fast.power, ref.power, atol=ATOL)
            np.testing.assert_allclose(fast.ranges, ref.ranges, atol=ATOL)

    def test_receive_plan_reusable_standalone(self, config):
        """RECEIVE_PLAN processes a raw beat cube without a scene."""
        rng = np.random.default_rng(9)
        shape = (4, config.num_antennas, config.chirp.num_samples)
        frames = 0.05 * (rng.normal(size=shape) + 1j * rng.normal(size=shape))
        results = {}
        for backend in ("naive", "vectorized"):
            ctx = ExecutionContext(
                array=UniformLinearArray(config),
                times=np.arange(4) / config.frame_rate, config=config,
                max_range=8.0, min_range=config.min_range,
                overrides=backend_overrides(pipeline=backend),
            )
            ctx.workspace["frames"] = frames
            execute(RECEIVE_PLAN, ctx)
            results[backend] = ctx.workspace["profiles"]
        for ref, fast in zip(results["naive"], results["vectorized"]):
            np.testing.assert_allclose(fast.power, ref.power, atol=ATOL)


class TestServeInstrumentation:
    def test_execute_batch_lands_in_stage_histograms(self, config, scene):
        requests = [SenseRequest(scene=scene, duration=0.4, seed=s)
                    for s in (0, 1)]
        key = BatchKey(config=config, max_range=10.0)
        items = [ExecutionItem(request_id=i, request=r, key=key)
                 for i, r in enumerate(requests)]
        before = snapshot_counts()
        outcomes = execute_batch(items)
        after = snapshot_counts()
        assert all(o.result is not None for o in outcomes)
        for stage in (Stage.EMIT, Stage.SYNTHESIZE, Stage.RANGE_FFT,
                      Stage.BACKGROUND_SUBTRACT, Stage.BEAMFORM):
            name = f"stages.{stage.value}.wall_s"
            assert after.get(name, 0) > before.get(name, 0), name
        counters = stage_metrics().snapshot()["counters"]
        assert counters["stages.synthesize.fused.runs"] >= 1
        assert counters["stages.beamform.fused.runs"] >= 1

    def test_plan_constants_cover_the_chain(self):
        assert [b.stage for b in SENSE_PLAN] == [
            Stage.EMIT, Stage.SYNTHESIZE, Stage.RANGE_FFT,
            Stage.BACKGROUND_SUBTRACT, Stage.BEAMFORM,
        ]
        assert RECEIVE_PLAN == SENSE_PLAN[2:]
