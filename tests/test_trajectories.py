"""Tests for repro.trajectories: synthesis, labels, dataset, IO."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.geometry import Rectangle
from repro.trajectories import (
    DEFAULT_RANGE_EDGES,
    HumanMotionSimulator,
    MotionProfile,
    TrajectoryDataset,
    load_dataset,
    range_class,
    range_class_of_trajectory,
    save_dataset,
)
from repro.types import Trajectory


class TestRangeLabels:
    def test_class_boundaries(self):
        assert range_class(0.1) == 0
        assert range_class(1.0) == 1
        assert range_class(2.0) == 2
        assert range_class(4.0) == 3
        assert range_class(10.0) == 4

    def test_edges_exclusive_inclusive(self):
        edge = DEFAULT_RANGE_EDGES[0]
        assert range_class(edge) == 0        # right-closed on the left class
        assert range_class(edge + 1e-9) == 1

    def test_rejects_negative_range(self):
        with pytest.raises(DatasetError):
            range_class(-0.1)

    def test_rejects_bad_edges(self):
        with pytest.raises(DatasetError):
            range_class(1.0, edges=(1.0, 0.5, 2.0, 3.0))
        with pytest.raises(DatasetError):
            range_class(1.0, edges=(1.0, 2.0))

    def test_trajectory_labelling(self):
        trajectory = Trajectory([[0.0, 0.0], [2.0, 0.0]], dt=1.0)
        assert range_class_of_trajectory(trajectory) == 2


class TestMotionProfile:
    def test_rejects_invalid(self):
        with pytest.raises(DatasetError):
            MotionProfile(preferred_speed=-1.0, goal_radius=1.0,
                          pause_probability=0.1, jitter=0.1)
        with pytest.raises(DatasetError):
            MotionProfile(preferred_speed=1.0, goal_radius=1.0,
                          pause_probability=1.0, jitter=0.1)


class TestHumanMotionSimulator:
    def test_trace_format_matches_paper(self, rng):
        simulator = HumanMotionSimulator(rng=rng)
        trajectory = simulator.sample_trajectory()
        assert len(trajectory) == 50
        assert trajectory.duration == pytest.approx(10.0)
        assert trajectory.label is not None

    def test_trajectories_stay_in_area(self, rng):
        area = Rectangle.from_size(5.0, 4.0)
        simulator = HumanMotionSimulator(area, rng=rng)
        for _ in range(20):
            trajectory = simulator.sample_trajectory()
            assert area.contains_all(trajectory.points)

    def test_speeds_are_human_scale(self, rng):
        simulator = HumanMotionSimulator(rng=rng)
        for profile_index in range(5):
            trajectory = simulator.sample_trajectory(profile_index)
            assert trajectory.speeds().max() < 3.0  # nobody sprints indoors

    def test_faster_profiles_cover_more_range(self, rng):
        simulator = HumanMotionSimulator(rng=rng)
        slow = np.mean([simulator.sample_trajectory(0).motion_range()
                        for _ in range(15)])
        fast = np.mean([simulator.sample_trajectory(4).motion_range()
                        for _ in range(15)])
        assert fast > 2.0 * slow

    def test_trajectories_are_smooth(self, rng):
        # Human motion can't jump: max per-step displacement is bounded by
        # max speed * dt.
        simulator = HumanMotionSimulator(rng=rng)
        for _ in range(10):
            trajectory = simulator.sample_trajectory()
            assert trajectory.step_lengths().max() < 0.8

    def test_rejects_bad_profile_index(self, rng):
        simulator = HumanMotionSimulator(rng=rng)
        with pytest.raises(DatasetError):
            simulator.sample_trajectory(99)

    def test_build_dataset_size_and_classes(self, rng):
        simulator = HumanMotionSimulator(rng=rng)
        dataset = simulator.build_dataset(100)
        assert len(dataset) == 100
        counts = dataset.class_counts()
        assert counts.sum() == 100
        assert np.count_nonzero(counts) >= 4  # nearly all classes populated


class TestTrajectoryDataset:
    def _dataset(self, count=10, num_points=20):
        trajectories = [
            Trajectory(np.cumsum(np.full((num_points, 2), 0.1 * (i + 1)),
                                 axis=0), dt=0.2, label=i % 5)
            for i in range(count)
        ]
        return TrajectoryDataset(trajectories)

    def test_rejects_mixed_lengths(self):
        a = Trajectory(np.zeros((10, 2)) + np.arange(10)[:, None], dt=0.2)
        b = Trajectory(np.zeros((11, 2)) + np.arange(11)[:, None], dt=0.2)
        with pytest.raises(DatasetError):
            TrajectoryDataset([a, b])

    def test_rejects_mixed_dt(self):
        a = Trajectory(np.arange(20.0).reshape(10, 2), dt=0.2)
        b = Trajectory(np.arange(20.0).reshape(10, 2), dt=0.3)
        with pytest.raises(DatasetError):
            TrajectoryDataset([a, b])

    def test_rejects_empty(self):
        with pytest.raises(DatasetError):
            TrajectoryDataset([])

    def test_steps_array_shape(self):
        dataset = self._dataset(count=4, num_points=20)
        assert dataset.steps_array().shape == (4, 19, 2)

    def test_step_scale_is_rms(self):
        dataset = self._dataset()
        steps = dataset.steps_array()
        assert dataset.step_scale() == pytest.approx(
            float(np.sqrt(np.mean(steps ** 2)))
        )

    def test_normalized_steps_unit_rms(self):
        dataset = self._dataset()
        normalized = dataset.normalized_steps()
        assert np.sqrt(np.mean(normalized ** 2)) == pytest.approx(1.0)

    def test_split_partitions(self, rng):
        dataset = self._dataset(count=10)
        first, second = dataset.split(0.3, rng)
        assert len(first) == 3
        assert len(second) == 7

    def test_split_rejects_degenerate_fraction(self, rng):
        dataset = self._dataset(count=10)
        with pytest.raises(DatasetError):
            dataset.split(0.0, rng)

    def test_batches_shapes_and_coverage(self, rng):
        dataset = self._dataset(count=10, num_points=20)
        batches = list(dataset.batches(4, rng))
        assert len(batches) == 2  # 10 // 4, short batch dropped
        for steps, labels in batches:
            assert steps.shape == (4, 19, 2)
            assert labels.shape == (4,)

    def test_filter_by_class(self):
        dataset = self._dataset(count=10)
        subset = dataset.filter_by_class(2)
        assert all(t.label == 2 for t in subset)

    def test_filter_missing_class_raises(self):
        dataset = self._dataset(count=3)  # labels 0, 1, 2 only
        with pytest.raises(DatasetError):
            dataset.filter_by_class(4)

    def test_subset(self):
        dataset = self._dataset(count=5)
        subset = dataset.subset([0, 2])
        assert len(subset) == 2


class TestDatasetIo:
    def test_roundtrip(self, tmp_path, rng):
        simulator = HumanMotionSimulator(rng=rng)
        dataset = simulator.build_dataset(8)
        path = tmp_path / "traces.npz"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        assert len(loaded) == len(dataset)
        assert loaded.dt == pytest.approx(dataset.dt)
        assert loaded.positions_array() == pytest.approx(
            dataset.positions_array()
        )
        assert np.array_equal(loaded.labels(), dataset.labels())

    def test_load_rejects_missing_entries(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, positions=np.zeros((2, 5, 2)))
        with pytest.raises(DatasetError):
            load_dataset(path)

    def test_load_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, version=np.array(99), positions=np.zeros((1, 5, 2)),
                 labels=np.zeros(1, dtype=np.int64), dt=np.array(0.2))
        with pytest.raises(DatasetError):
            load_dataset(path)
