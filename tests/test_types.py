"""Tests for repro.types: Trajectory and PolarPoint."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.types import PolarPoint, Trajectory, as_points_array


class TestAsPointsArray:
    def test_accepts_list_of_pairs(self):
        arr = as_points_array([[0.0, 1.0], [2.0, 3.0]])
        assert arr.shape == (2, 2)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ConfigurationError):
            as_points_array([[1.0, 2.0, 3.0]])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            as_points_array(np.empty((0, 2)))

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            as_points_array([[0.0, np.nan]])

    def test_rejects_inf(self):
        with pytest.raises(ConfigurationError):
            as_points_array([[np.inf, 0.0]])


class TestPolarPoint:
    def test_to_cartesian_at_origin(self):
        point = PolarPoint(radius=2.0, angle=np.pi / 2)
        xy = point.to_cartesian()
        assert xy == pytest.approx([0.0, 2.0], abs=1e-12)

    def test_to_cartesian_with_origin(self):
        point = PolarPoint(radius=1.0, angle=0.0)
        xy = point.to_cartesian(origin=(3.0, 4.0))
        assert xy == pytest.approx([4.0, 4.0])


class TestTrajectoryBasics:
    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ConfigurationError):
            Trajectory([[0, 0], [1, 1]], dt=0.0)

    def test_len_and_iter(self):
        trajectory = Trajectory([[0, 0], [1, 0], [2, 0]], dt=0.5)
        assert len(trajectory) == 3
        assert [tuple(p) for p in trajectory] == [(0, 0), (1, 0), (2, 0)]

    def test_duration_and_times(self):
        trajectory = Trajectory([[0, 0], [1, 0], [2, 0]], dt=0.5)
        assert trajectory.duration == pytest.approx(1.0)
        assert trajectory.times == pytest.approx([0.0, 0.5, 1.0])

    def test_path_length_straight_line(self):
        trajectory = Trajectory([[0, 0], [3, 4]], dt=1.0)
        assert trajectory.path_length() == pytest.approx(5.0)

    def test_speeds(self):
        trajectory = Trajectory([[0, 0], [1, 0], [1, 2]], dt=0.5)
        assert trajectory.speeds() == pytest.approx([2.0, 4.0])

    def test_headings(self):
        trajectory = Trajectory([[0, 0], [1, 0], [1, 1]], dt=1.0)
        assert trajectory.headings() == pytest.approx([0.0, np.pi / 2])

    def test_turning_angles_wrap(self):
        # Heading goes from +170 deg to -170 deg: turning angle is +20 deg,
        # not -340.
        a0 = np.array([0.0, 0.0])
        a1 = a0 + [math.cos(math.radians(170)), math.sin(math.radians(170))]
        a2 = a1 + [math.cos(math.radians(-170)), math.sin(math.radians(-170))]
        trajectory = Trajectory(np.vstack([a0, a1, a2]), dt=1.0)
        assert trajectory.turning_angles() == pytest.approx(
            [math.radians(20.0)], abs=1e-9
        )

    def test_motion_range_is_bbox_diagonal(self):
        trajectory = Trajectory([[0, 0], [3, 0], [3, 4]], dt=1.0)
        assert trajectory.motion_range() == pytest.approx(5.0)


class TestTrajectoryTransforms:
    def test_centered_has_zero_centroid(self):
        trajectory = Trajectory([[1, 2], [3, 4], [5, 0]], dt=1.0)
        assert trajectory.centered().centroid() == pytest.approx([0.0, 0.0])

    def test_translated(self):
        trajectory = Trajectory([[0, 0], [1, 1]], dt=1.0)
        moved = trajectory.translated([10.0, -2.0])
        assert moved.points[0] == pytest.approx([10.0, -2.0])

    def test_translated_rejects_bad_offset(self):
        trajectory = Trajectory([[0, 0], [1, 1]], dt=1.0)
        with pytest.raises(ConfigurationError):
            trajectory.translated([1.0, 2.0, 3.0])

    def test_rotated_quarter_turn(self):
        trajectory = Trajectory([[1, 0], [2, 0]], dt=1.0)
        rotated = trajectory.rotated(np.pi / 2)
        assert rotated.points[0] == pytest.approx([0.0, 1.0], abs=1e-12)
        assert rotated.points[1] == pytest.approx([0.0, 2.0], abs=1e-12)

    def test_rotation_preserves_lengths(self):
        trajectory = Trajectory([[0, 0], [1, 2], [-1, 3]], dt=1.0)
        rotated = trajectory.rotated(0.7, about=(5.0, 5.0))
        assert rotated.step_lengths() == pytest.approx(trajectory.step_lengths())

    def test_scaled_rejects_nonpositive(self):
        trajectory = Trajectory([[0, 0], [1, 1]], dt=1.0)
        with pytest.raises(ConfigurationError):
            trajectory.scaled(0.0)

    def test_resampled_preserves_endpoints(self):
        trajectory = Trajectory([[0, 0], [1, 0], [2, 0]], dt=1.0)
        resampled = trajectory.resampled(7)
        assert len(resampled) == 7
        assert resampled.points[0] == pytest.approx([0.0, 0.0])
        assert resampled.points[-1] == pytest.approx([2.0, 0.0])
        assert resampled.duration == pytest.approx(trajectory.duration)

    def test_resampled_rejects_single_point(self):
        trajectory = Trajectory([[0, 0], [1, 0]], dt=1.0)
        with pytest.raises(ConfigurationError):
            trajectory.resampled(1)

    def test_label_preserved_by_transforms(self):
        trajectory = Trajectory([[0, 0], [1, 1]], dt=1.0, label=3)
        assert trajectory.centered().label == 3
        assert trajectory.resampled(5).label == 3


class TestTrajectoryPolar:
    def test_to_polar_roundtrip(self):
        trajectory = Trajectory([[1, 1], [2, 0], [0, 3]], dt=1.0)
        origin = (0.5, -0.5)
        polar = trajectory.to_polar(origin)
        back = Trajectory.from_polar(polar, dt=1.0, origin=origin)
        assert back.points == pytest.approx(trajectory.points)

    def test_position_at_interpolates(self):
        trajectory = Trajectory([[0, 0], [2, 0]], dt=1.0)
        assert trajectory.position_at(0.5) == pytest.approx([1.0, 0.0])

    def test_position_at_clamps(self):
        trajectory = Trajectory([[0, 0], [2, 0]], dt=1.0)
        assert trajectory.position_at(-5.0) == pytest.approx([0.0, 0.0])
        assert trajectory.position_at(99.0) == pytest.approx([2.0, 0.0])
